package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

// fakeCoord fakes just enough of the coordinator API: the first rejects
// submits with a 429, then accepts and drives the job to done.
func fakeCoord(rejects int32) (*httptest.Server, *atomic.Int32) {
	var submits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Tenant") != "ci" {
			http.Error(w, `{"error":"wrong tenant"}`, http.StatusBadRequest)
			return
		}
		if submits.Add(1) <= rejects {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"tenant rate limit exceeded"}`)) //nolint:errcheck
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"fj-000001","tenant":"ci","class":"batch","state":"queued","submitted_at":"2026-01-01T00:00:00Z"}`)) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/jobs/fj-000001", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"fj-000001","tenant":"ci","class":"batch","state":"done","submitted_at":"2026-01-01T00:00:00Z"}`)) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"workers":[{"id":"w1","url":"http://w1","stats":{"place_workers":1,"queue_cap":8,"queue_depth":0,"running":0},"last_seen":"2026-01-01T00:00:00Z"}],"pending":0,"counters":{"submitted":1,"rejected":1,"assigned":1,"rerouted":0,"stolen":0,"affinity_hits":0,"heartbeats":3}}`)) //nolint:errcheck
	})
	return httptest.NewServer(mux), &submits
}

func testSpec() service.JobSpec {
	return service.JobSpec{Design: service.DesignSpec{Synth: &service.SynthSpec{Cells: 64}}}
}

func TestSubmitSurfacesRetryAfter(t *testing.T) {
	srv, _ := fakeCoord(1)
	defer srv.Close()
	c := &Client{Base: srv.URL, Tenant: "ci"}

	_, err := c.Submit(context.Background(), testSpec())
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("first Submit err = %v, want *RetryAfterError", err)
	}
	if ra.After != time.Second || ra.Status != http.StatusTooManyRequests {
		t.Errorf("RetryAfterError = %+v, want 1s/429", ra)
	}
	if ra.Msg == "" {
		t.Error("pushback message should carry the server's error text")
	}

	v, err := c.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	if v.ID != "fj-000001" || v.Tenant != "ci" {
		t.Errorf("accepted view = %+v", v)
	}
}

func TestSubmitWaitHonorsBackpressure(t *testing.T) {
	srv, submits := fakeCoord(2)
	defer srv.Close()
	c := &Client{Base: srv.URL, Tenant: "ci", Poll: time.Millisecond}

	start := time.Now()
	v, err := c.SubmitWait(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := submits.Load(); got != 3 {
		t.Errorf("submit attempts = %d, want 3 (two 429s absorbed)", got)
	}
	// Two advertised 1-second waits must actually have been slept out.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("SubmitWait returned after %s, want >= 2s of Retry-After pacing", elapsed)
	}
	final, err := c.WaitTerminal(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Errorf("final state = %q, want done", final.State)
	}
}

func TestFleetStatus(t *testing.T) {
	srv, _ := fakeCoord(0)
	defer srv.Close()
	c := &Client{Base: srv.URL}
	st, err := c.Fleet(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := fleet.Counters{Submitted: 1, Rejected: 1, Assigned: 1, Heartbeats: 3}
	if len(st.Workers) != 1 || st.Workers[0].ID != "w1" || st.Counters != want {
		t.Errorf("Fleet() = %+v", st)
	}
}

func TestSubmitWaitRespectsContext(t *testing.T) {
	srv, _ := fakeCoord(1000)
	defer srv.Close()
	c := &Client{Base: srv.URL, Tenant: "ci"}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.SubmitWait(ctx, testSpec()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("SubmitWait under a dead context = %v, want DeadlineExceeded", err)
	}
}
