package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/service"
)

func testRecord(job string, seq int) journalRecord {
	spec := fastSpec(int64(seq))
	return journalRecord{
		Kind: recAccepted, Job: job, Tenant: "t1", Class: "batch",
		IdemKey: "k-" + job, Key: uint64(seq), Spec: &spec,
		Submitted: time.Unix(10000+int64(seq), 0).UTC(),
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []journalRecord{
		testRecord("fj-000001", 1),
		{Kind: recAssigned, Job: "fj-000001", Worker: "wA", WorkerURL: "http://a", RemoteID: "r1", DataDir: "/data/wA", State: "running"},
		{Kind: recRerouted, Job: "fj-000001", ResumeDir: "/data/wA/jobs/r1/checkpoints"},
		{Kind: recTerminal, Job: "fj-000001", State: "done"},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.AppendedSinceCompact(); got != len(want) {
		t.Fatalf("AppendedSinceCompact = %d, want %d", got, len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Job != w.Job || g.Worker != w.Worker ||
			g.ResumeDir != w.ResumeDir || g.State != w.State || g.IdemKey != w.IdemKey {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
	if got[0].Spec == nil || got[0].Spec.Design.Synth == nil || got[0].Spec.Design.Synth.Seed != 1 {
		t.Errorf("accepted record lost its spec: %+v", got[0].Spec)
	}
	if !got[0].Submitted.Equal(want[0].Submitted) {
		t.Errorf("Submitted = %v, want %v", got[0].Submitted, want[0].Submitted)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial frame; replay
// keeps the intact prefix, reopening truncates the garbage, and appending
// continues from the last good frame.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Append(testRecord("fj-00000"+string(rune('0'+i)), i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate the torn tail: half a frame of garbage after the good records.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs, err := openJournal(path)
	if err != nil {
		t.Fatalf("torn tail must not be an error: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records past the torn tail, want 3", len(recs))
	}
	// Appending after truncation must produce a clean, fully-replayable file.
	if err := j2.Append(testRecord("fj-000004", 4)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs2, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 4 || recs2[3].Job != "fj-000004" {
		t.Fatalf("post-truncate append lost: %d records, last %+v", len(recs2), recs2[len(recs2)-1])
	}
}

// TestJournalCorruptFrameStopsReplay: a bit flip inside a frame body fails
// its CRC; replay keeps everything before it and drops it and the rest.
func TestJournalCorruptFrameStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord("fj-000001", 1)); err != nil {
		t.Fatal(err)
	}
	end1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord("fj-000002", 2)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip one byte inside the second frame's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[end1.Size()+10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if len(recs) != 1 || recs[0].Job != "fj-000001" {
		t.Fatalf("corrupt frame replay = %+v, want only the first record", recs)
	}
}

// TestJournalRejectsForeignFile: a file that is not a journal at all is an
// error, not silently truncated to nothing.
func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	if err := os.WriteFile(path, []byte("definitely not a journal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := openJournal(path)
	if !errors.Is(err, ErrJournalMagic) {
		t.Fatalf("foreign file error = %v, want ErrJournalMagic", err)
	}
}

// TestJournalCompact: compaction atomically replaces history with the
// snapshot and resets the append counter.
func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.Append(testRecord("fj-000001", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := []journalRecord{
		{Kind: recMeta, Seq: 42},
		testRecord("fj-000042", 42),
	}
	if err := j.Compact(snap); err != nil {
		t.Fatal(err)
	}
	if got := j.AppendedSinceCompact(); got != 0 {
		t.Fatalf("AppendedSinceCompact after compact = %d, want 0", got)
	}
	// The reopened handle must still append to the NEW file.
	if err := j.Append(journalRecord{Kind: recTerminal, Job: "fj-000042", State: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Kind != recMeta || recs[0].Seq != 42 || recs[2].State != "done" {
		t.Fatalf("compacted journal replay = %+v", recs)
	}
}

// TestJournalBrokenAppendsFail: a journal whose handle was lost (the reopen
// after a compaction rename failed) must fail appends loudly instead of
// fsyncing into the unlinked pre-compaction inode, and stay safe to Close.
func TestJournalBrokenAppendsFail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the failed-reopen outcome: the handle is gone for good.
	j.mu.Lock()
	j.f.Close()
	j.f = nil
	j.mu.Unlock()
	if err := j.Append(testRecord("fj-000001", 1)); !errors.Is(err, errJournalBroken) {
		t.Fatalf("append on broken journal = %v, want errJournalBroken", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("closing a broken journal = %v, want nil", err)
	}
}

// TestFleetServiceSpecStateRoundTrip guards the service.State type alias
// assumptions the journal replay makes ("pending" is not a service state).
func TestJournalReplayAssignsDefaultQueuedState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord("fj-000001", 1)); err != nil {
		t.Fatal(err)
	}
	// An assigned record with no state (older writer) must replay as queued.
	if err := j.Append(journalRecord{Kind: recAssigned, Job: "fj-000001", Worker: "wA", WorkerURL: "http://a", RemoteID: "r1"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	c, err := NewCoordinator(Config{HeartbeatTTL: time.Second, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, err := c.Get("fj-000001")
	if err != nil {
		t.Fatal(err)
	}
	if v.State != string(service.StateQueued) || !v.Recovered {
		t.Fatalf("replayed assigned job = %+v, want recovered queued", v)
	}
}
