package fleet

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"

	"repro/internal/service"
)

// NewHandler wires a coordinator into the fleet JSON API:
//
//	POST   /v1/workers/heartbeat       worker registration + liveness report
//	DELETE /v1/workers/{id}            graceful deregistration: the draining
//	                                   worker's jobs re-route immediately
//	POST   /v1/jobs                    submit a JobSpec (X-Tenant header selects
//	                                   the tenant; an X-Idempotency-Key header
//	                                   makes retries safe — a replayed key
//	                                   returns the existing job; 429 +
//	                                   Retry-After on pushback)
//	GET    /v1/jobs                    list fleet jobs
//	GET    /v1/jobs/{id}               one job, refreshed from its worker
//	DELETE /v1/jobs/{id}               cancel a job wherever it is
//	GET    /v1/jobs/{id}/trajectory    NDJSON trajectory stream proxied from
//	                                   the worker running the job
//	GET    /v1/fleet                   fleet status: workers + routing counters
//	GET    /v1/fleet/overview          aggregated dashboard snapshot: workers,
//	                                   tenants, cache rates, active jobs
//	GET    /metrics                    Prometheus text exposition
//	GET    /healthz                    liveness probe
//	GET    /readyz                     readiness: 200 once a worker is live
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var hb Heartbeat
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		if err := dec.Decode(&hb); err != nil {
			httpError(w, http.StatusBadRequest, "bad heartbeat: "+err.Error())
			return
		}
		if err := c.RecordHeartbeat(hb, c.now()); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		httpJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("DELETE /v1/workers/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !c.DeregisterWorker(r.PathValue("id")) {
			httpError(w, http.StatusNotFound, "fleet: unknown worker")
			return
		}
		httpJSON(w, http.StatusOK, map[string]string{"status": "deregistered"})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec service.JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
			return
		}
		v, after, err := c.SubmitIdem(spec, r.Header.Get("X-Tenant"), r.Header.Get("X-Idempotency-Key"))
		if err != nil {
			if status := pushbackStatus(err); status != 0 {
				// Integer seconds, rounded up: every Retry-After parser
				// accepts the delta-seconds form.
				secs := int(math.Ceil(after.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				httpError(w, status, err.Error())
				return
			}
			if errors.Is(err, service.ErrSpecRejected) {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		httpJSON(w, http.StatusAccepted, v)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, http.StatusOK, map[string]any{"jobs": c.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := c.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		httpJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := c.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		httpJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trajectory", func(w http.ResponseWriter, r *http.Request) {
		c.proxyTrajectory(w, r)
	})
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("GET /v1/fleet/overview", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, http.StatusOK, c.Overview())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.tel.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !c.Ready() {
			httpError(w, http.StatusServiceUnavailable, "no live workers")
			return
		}
		httpJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// pushbackStatus returns the 429 status for admission/saturation pushback
// errors (0 for everything else).
func pushbackStatus(err error) int {
	if errors.Is(err, ErrRateLimited) || errors.Is(err, ErrQuotaExhausted) || errors.Is(err, ErrSaturated) {
		return http.StatusTooManyRequests
	}
	return 0
}

// proxyTrajectory streams a job's NDJSON trajectory through the coordinator:
// the client talks to one address whichever worker runs the job. The
// upstream request is bound to the client's context (a dropped client tears
// down the worker stream) and uses the timeout-free stream client so long
// follows are not cut off mid-run.
func (c *Coordinator) proxyTrajectory(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	j, ok := c.jobs[id]
	var url, remote string
	if ok {
		url, remote = j.workerURL, j.remoteID
	}
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, ErrUnknownJob.Error())
		return
	}
	if url == "" {
		httpError(w, http.StatusConflict, "job has no worker yet (pending)")
		return
	}
	target := url + "/v1/jobs/" + remote + "/trajectory"
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp, err := c.stream.Do(req)
	if err != nil {
		c.tel.ProxyErrors.Inc()
		httpError(w, http.StatusBadGateway, "worker unreachable: "+err.Error())
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			if err != io.EOF {
				c.tel.ProxyErrors.Inc()
			}
			return
		}
	}
}

func httpJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func httpError(w http.ResponseWriter, status int, msg string) {
	httpJSON(w, status, map[string]string{"error": msg})
}
