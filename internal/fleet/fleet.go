// Package fleet scales the single-node placement daemon into a coordinated
// multi-node service. A Coordinator registers placerd workers through
// periodic heartbeats (carrying capacity and queue-depth reports), routes
// submitted jobs to workers by rendezvous hashing with a checkpoint-affinity
// override (a resubmitted design lands on the node whose durable store
// already holds its snapshots), steals queued work from hot nodes onto idle
// ones, re-routes jobs off dead workers after heartbeat expiry, and layers
// multi-tenant admission control (priority classes, token-bucket rate
// limits, in-flight quotas, Retry-After backpressure) over the whole fleet.
// Everything is stdlib-only HTTP + JSON, reusing the placerd worker API from
// internal/service as the node-to-node protocol.
package fleet

import (
	"time"

	"repro/internal/service"
)

// Heartbeat is the worker → coordinator report: a stable identity plus the
// live capacity/load snapshot. The first heartbeat from an unknown worker
// registers it; missing heartbeats past the registry TTL expire it.
type Heartbeat struct {
	// ID is the worker's stable identity (stable across restarts, so a
	// rebooted worker re-claims its registration and its jobs).
	ID string `json:"id"`
	// URL is the base URL of the worker's placerd HTTP API.
	URL string `json:"url"`
	// DataDir, when non-empty, is the worker's durable store root on a
	// filesystem the rest of the fleet can reach. The coordinator uses it
	// to point a re-routed job at the dead worker's checkpoints.
	DataDir string `json:"data_dir,omitempty"`
	// Stats is the worker's live capacity/load report.
	Stats service.ManagerStats `json:"stats"`
}

// WorkerStatus is one worker's row in the fleet status document.
type WorkerStatus struct {
	ID       string               `json:"id"`
	URL      string               `json:"url"`
	DataDir  string               `json:"data_dir,omitempty"`
	Stats    service.ManagerStats `json:"stats"`
	LastSeen time.Time            `json:"last_seen"`
}

// Counters is the machine-readable counter block of GET /v1/fleet, consumed
// by the placerload harness (affinity-hit and steal accounting).
type Counters struct {
	Submitted    int64 `json:"submitted"`
	Rejected     int64 `json:"rejected"`
	Assigned     int64 `json:"assigned"`
	Rerouted     int64 `json:"rerouted"`
	Stolen       int64 `json:"stolen"`
	AffinityHits int64 `json:"affinity_hits"`
	ParentRoutes int64 `json:"parent_routes"`
	Heartbeats   int64 `json:"heartbeats"`
	// Recovered counts jobs reconstructed from the journal across
	// coordinator restarts (0 on a journal-less coordinator).
	Recovered int64 `json:"recovered,omitempty"`
}

// Status is the GET /v1/fleet document: live workers plus routing counters.
type Status struct {
	Workers  []WorkerStatus `json:"workers"`
	Pending  int            `json:"pending"`
	Counters Counters       `json:"counters"`
}
