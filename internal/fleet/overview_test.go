package fleet

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestFleetOverviewEndpoint drives a two-worker fleet through a completed
// job and an admission rejection, then checks that GET /v1/fleet/overview
// aggregates all of it: worker liveness + heartbeat ages, the tenant
// admission panel with the 429 split, cache totals, and the job rows.
func TestFleetOverviewEndpoint(t *testing.T) {
	clock := newFakeClock()
	adm, err := NewAdmission(TenantConfig{}, []TenantConfig{
		{Name: "quota", Class: "prod", MaxInFlight: 1},
	}, clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCoordinator(t, clock, adm)
	wA := startWorker(t, "wA", service.Config{})
	wB := startWorker(t, "wB", service.Config{})
	for _, w := range []*testWorker{wA, wB} {
		if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()

	v1, _, err := c.Submit(fastSpec(3), "t1")
	if err != nil {
		t.Fatal(err)
	}
	waitFleetState(t, c, clock, v1.ID, "done")

	// Saturate the quota tenant: one long-running job in flight, the second
	// submit must be pushed back and counted as a quota rejection.
	vq, _, err := c.Submit(slowSpec(4), "quota")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Submit(slowSpec(5), "quota"); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("second quota submit: err = %v, want ErrQuotaExhausted", err)
	}

	clock.Advance(200 * time.Millisecond)
	for _, w := range []*testWorker{wA, wB} {
		if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
			t.Fatal(err)
		}
	}
	c.Tick(clock.Now())

	resp, err := http.Get(srv.URL + "/v1/fleet/overview")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overview status = %d", resp.StatusCode)
	}
	var ov Overview
	if err := json.NewDecoder(resp.Body).Decode(&ov); err != nil {
		t.Fatal(err)
	}

	if len(ov.Workers) != 2 || ov.WorkersLive != 2 {
		t.Fatalf("workers = %d live %d, want 2/2: %+v", len(ov.Workers), ov.WorkersLive, ov.Workers)
	}
	for _, w := range ov.Workers {
		if !w.Live {
			t.Errorf("worker %s not live: %+v", w.ID, w)
		}
		if w.HeartbeatAgeSeconds < 0 || w.HeartbeatAgeSeconds > 1 {
			t.Errorf("worker %s heartbeat age %.3fs out of range", w.ID, w.HeartbeatAgeSeconds)
		}
		if w.QueueCap <= 0 || w.PlaceWorkers <= 0 {
			t.Errorf("worker %s missing capacity facts: %+v", w.ID, w)
		}
	}
	if ov.Workers[0].ID != "wA" || ov.Workers[1].ID != "wB" {
		t.Errorf("workers not sorted by ID: %s, %s", ov.Workers[0].ID, ov.Workers[1].ID)
	}

	var seenT1, seenQuota bool
	for _, ten := range ov.Tenants {
		switch ten.Name {
		case "t1":
			seenT1 = true
			if ten.Admitted != 1 || ten.InFlight != 0 {
				t.Errorf("t1 admitted %d in-flight %d, want 1/0", ten.Admitted, ten.InFlight)
			}
		case "quota":
			seenQuota = true
			if ten.Class != "prod" || ten.MaxInFlight != 1 {
				t.Errorf("quota policy not echoed: %+v", ten)
			}
			if ten.Admitted != 1 || ten.RejectedQuota != 1 || ten.InFlight != 1 {
				t.Errorf("quota accounting = admitted %d rejectedQuota %d inFlight %d, want 1/1/1",
					ten.Admitted, ten.RejectedQuota, ten.InFlight)
			}
		}
	}
	if !seenT1 || !seenQuota {
		t.Fatalf("tenant panel missing rows (t1 %v, quota %v): %+v", seenT1, seenQuota, ov.Tenants)
	}

	if ov.Counters.Submitted != 2 || ov.Counters.Rejected != 1 {
		t.Errorf("counters submitted %d rejected %d, want 2/1", ov.Counters.Submitted, ov.Counters.Rejected)
	}
	if ov.JobStates["done"] != 1 {
		t.Errorf("JobStates = %v, want one done job", ov.JobStates)
	}
	var doneRow, runRow *JobOverview
	for i := range ov.Jobs {
		switch ov.Jobs[i].ID {
		case v1.ID:
			doneRow = &ov.Jobs[i]
		case vq.ID:
			runRow = &ov.Jobs[i]
		}
	}
	if doneRow == nil || runRow == nil {
		t.Fatalf("job rows missing (done %v, running %v): %+v", doneRow, runRow, ov.Jobs)
	}
	if doneRow.State != "done" || doneRow.HPWL <= 0 || doneRow.Iteration <= 0 {
		t.Errorf("done row lacks final result facts: %+v", doneRow)
	}
	if doneRow.Tenant != "t1" || runRow.Class != "prod" {
		t.Errorf("rows lost routing facts: %+v / %+v", doneRow, runRow)
	}
	if ov.TruncatedJobs != 0 {
		t.Errorf("TruncatedJobs = %d with %d jobs", ov.TruncatedJobs, len(ov.Jobs))
	}

	c.Cancel(vq.ID) //nolint:errcheck
}

// TestOverviewJobCapKeepsActiveJobs checks the embed cap: with more
// terminal jobs than the terminal cap, the overview keeps the newest ones,
// counts the rest as truncated, and still tallies every job in JobStates.
func TestOverviewJobCapKeepsActiveJobs(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	w := startWorker(t, "w1", service.Config{})
	if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	total := overviewTerminalCap + 5
	for i := 0; i < total; i++ {
		v, _, err := c.Submit(fastSpec(int64(100+i)), "bulk")
		if err != nil {
			t.Fatal(err)
		}
		waitFleetState(t, c, clock, v.ID, "done")
	}
	ov := c.Overview()
	if len(ov.Jobs) != overviewTerminalCap {
		t.Errorf("jobs embedded = %d, want terminal cap %d", len(ov.Jobs), overviewTerminalCap)
	}
	if ov.TruncatedJobs != total-overviewTerminalCap {
		t.Errorf("TruncatedJobs = %d, want %d", ov.TruncatedJobs, total-overviewTerminalCap)
	}
	if ov.JobStates["done"] != total {
		t.Errorf("JobStates[done] = %d, want %d (truncation must not hide state counts)",
			ov.JobStates["done"], total)
	}
}

// TestCoordinatorMetricsExposition checks the coordinator's /metrics page:
// the build-info metric, the labeled per-worker heartbeat-age/liveness
// gauges (including a stale worker showing live 0 before expiry removes
// it), and the fleet-wide workers_live gauge after a maintenance tick.
func TestCoordinatorMetricsExposition(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	w1 := startWorker(t, "w1", service.Config{})
	w2 := startWorker(t, "w2", service.Config{})
	if err := c.RecordHeartbeat(w1.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second) // past the 1s test TTL: w1 goes stale
	if err := c.RecordHeartbeat(w2.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()
	scrape := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Publish health without running expiry: the stale worker must render as
	// live 0 with its true heartbeat age.
	c.publishWorkerHealth(clock.Now())
	page := scrape()
	for _, want := range []string{
		"placercoord_build_info{",
		`placercoord_worker_live{worker="w1"} 0`,
		`placercoord_worker_live{worker="w2"} 1`,
		`placercoord_worker_heartbeat_age_seconds{worker="w1"} 2`,
		`placercoord_worker_heartbeat_age_seconds{worker="w2"} 0`,
		`placercoord_worker_queue_depth{worker="w1"}`,
		`placercoord_worker_running{worker="w2"}`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(page, `go="go`) {
		t.Errorf("build info lacks a go= label:\n%s", page[:min(len(page), 400)])
	}

	// A full tick expires the stale worker: its series disappear and the
	// fleet-wide live gauge drops to the single survivor.
	c.Tick(clock.Now())
	page = scrape()
	if strings.Contains(page, `worker="w1"`) {
		t.Errorf("expired worker w1 still exposed after tick")
	}
	for _, want := range []string{
		`placercoord_worker_live{worker="w2"} 1`,
		"placercoord_workers_live 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("post-tick /metrics missing %q", want)
		}
	}
}
