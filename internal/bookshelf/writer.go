package bookshelf

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/netlist"
)

// WriteDesign writes the design as a Bookshelf file set under dir, using
// the design name as the base file name, and returns the .aux path.
func WriteDesign(d *netlist.Design, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	base := d.Name
	if base == "" {
		base = "design"
	}
	f := Files{
		Nodes: filepath.Join(dir, base+".nodes"),
		Nets:  filepath.Join(dir, base+".nets"),
		Wts:   filepath.Join(dir, base+".wts"),
		Pl:    filepath.Join(dir, base+".pl"),
		Scl:   filepath.Join(dir, base+".scl"),
	}
	if err := writeNodes(d, f.Nodes); err != nil {
		return "", err
	}
	if err := writeNets(d, f.Nets); err != nil {
		return "", err
	}
	if err := writeWts(d, f.Wts); err != nil {
		return "", err
	}
	if err := writePl(d, f.Pl); err != nil {
		return "", err
	}
	if err := writeScl(d, f.Scl); err != nil {
		return "", err
	}
	aux := filepath.Join(dir, base+".aux")
	content := fmt.Sprintf("RowBasedPlacement : %s.nodes %s.nets %s.wts %s.pl %s.scl\n",
		base, base, base, base, base)
	if err := os.WriteFile(aux, []byte(content), 0o644); err != nil {
		return "", err
	}
	return aux, nil
}

func withWriter(path string, fn func(w *bufio.Writer) error) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(fh)
	if err := fn(w); err != nil {
		fh.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

func writeNodes(d *netlist.Design, path string) error {
	return withWriter(path, func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA nodes 1.0")
		terms := 0
		for _, c := range d.Cells {
			if !c.Kind.Moves() {
				terms++
			}
		}
		fmt.Fprintf(w, "NumNodes : %d\n", len(d.Cells))
		fmt.Fprintf(w, "NumTerminals : %d\n", terms)
		for _, c := range d.Cells {
			if c.Kind.Moves() {
				fmt.Fprintf(w, "  %s %g %g\n", c.Name, c.W, c.H)
			} else {
				fmt.Fprintf(w, "  %s %g %g terminal\n", c.Name, c.W, c.H)
			}
		}
		return nil
	})
}

func writeNets(d *netlist.Design, path string) error {
	return withWriter(path, func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA nets 1.0")
		fmt.Fprintf(w, "NumNets : %d\n", len(d.Nets))
		fmt.Fprintf(w, "NumPins : %d\n", len(d.Pins))
		for e := range d.Nets {
			pins := d.NetPins(e)
			fmt.Fprintf(w, "NetDegree : %d %s\n", len(pins), d.Nets[e].Name)
			for _, p := range pins {
				c := d.Cells[p.Cell]
				// Lower-left-relative -> center-relative.
				fmt.Fprintf(w, "  %s B : %g %g\n", c.Name, p.Dx-c.W/2, p.Dy-c.H/2)
			}
		}
		return nil
	})
}

func writeWts(d *netlist.Design, path string) error {
	return withWriter(path, func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA wts 1.0")
		for _, n := range d.Nets {
			fmt.Fprintf(w, "  %s %g\n", n.Name, n.Weight)
		}
		return nil
	})
}

func writePl(d *netlist.Design, path string) error {
	return withWriter(path, func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA pl 1.0")
		for i, c := range d.Cells {
			suffix := ""
			if !c.Kind.Moves() {
				suffix = " /FIXED"
			}
			fmt.Fprintf(w, "  %s %g %g : N%s\n", c.Name, d.X[i], d.Y[i], suffix)
		}
		return nil
	})
}

func writeScl(d *netlist.Design, path string) error {
	return withWriter(path, func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA scl 1.0")
		fmt.Fprintf(w, "NumRows : %d\n", len(d.Rows))
		for _, r := range d.Rows {
			sites := r.Sites()
			fmt.Fprintln(w, "CoreRow Horizontal")
			fmt.Fprintf(w, "  Coordinate : %g\n", r.Y)
			fmt.Fprintf(w, "  Height : %g\n", r.Height)
			fmt.Fprintf(w, "  Sitewidth : %g\n", r.SiteW)
			fmt.Fprintf(w, "  Sitespacing : %g\n", r.SiteW)
			fmt.Fprintf(w, "  NumSites : %d\n", sites)
			fmt.Fprintf(w, "  SubrowOrigin : %g\n", r.XL)
			fmt.Fprintln(w, "End")
		}
		return nil
	})
}
