package bookshelf

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/netlist"
)

// typedOrNil fails the test when a parser returned an error outside the
// package's typed taxonomy: every parse failure must be ErrFormat or
// ErrLimit, never a raw strconv/bufio error or — worse — a panic upstream.
func typedOrNil(t *testing.T, err error, what string) {
	t.Helper()
	if err != nil && !errors.Is(err, ErrFormat) && !errors.Is(err, ErrLimit) {
		t.Errorf("%s returned an untyped error: %v", what, err)
	}
}

// fuzzParseAll drives every reader-based parser over one input. parseNets
// needs a builder populated with the parsed nodes; when the nodes parse
// fails it runs against an empty builder (exercising the unknown-node path).
func fuzzParseAll(t *testing.T, data []byte) {
	nodes, order, err := parseNodes(bytes.NewReader(data), "fuzz.nodes")
	typedOrNil(t, err, "parseNodes")
	if err != nil {
		nodes, order = map[string]node{}, nil
	}
	_, _, err = parsePl(bytes.NewReader(data), "fuzz.pl")
	typedOrNil(t, err, "parsePl")

	b := netlist.NewBuilder("fuzz")
	for _, nm := range order {
		nd := nodes[nm]
		b.AddCell(nm, netlist.Movable, nd.w, nd.h, 0, 0)
	}
	err = parseNets(bytes.NewReader(data), "fuzz.nets", map[string]float64{}, b, nodes)
	typedOrNil(t, err, "parseNets")

	_, _, err = parseScl(bytes.NewReader(data), "fuzz.scl")
	typedOrNil(t, err, "parseScl")
}

// FuzzParse feeds arbitrary bytes through all four Bookshelf parsers. The
// property under test: no panic, no unbounded allocation, and every failure
// is a typed error. `make fuzz` explores; `make check` replays the seeds.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Valid members of a tiny design.
		"UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 1\na 2 1\npad 0 0 terminal\n",
		"UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\na I : 0.5 0.25\npad O : 0 0\n",
		"UCLA pl 1.0\na 1 2 : N\npad 0 20 : N /FIXED\n",
		"UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\nCoordinate : 0\nHeight : 1\nSitewidth : 1\nNumSites : 20\nSubrowOrigin : 0\nEnd\n",
		// Edge shapes that used to be (or could become) crashes.
		"CoreRow Horizontal\nCoordinate :\nEnd\n", // valueless key: former panic
		"NumNodes : -1\n",
		"NumNodes : 99999999999999999999\n",
		"NetDegree : 3 n0\na I : 0 0\n", // truncated net
		"a 1\n",                         // short node line
		"a x y\n",                       // non-numeric size
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(fuzzParseAll)
}

func TestParseLimits(t *testing.T) {
	// Declared count beyond the cap is ErrLimit, not an allocation attempt.
	_, _, err := parseNodes(strings.NewReader("NumNodes : 999999999\n"), "t.nodes")
	if !errors.Is(err, ErrLimit) {
		t.Errorf("oversized NumNodes: err = %v, want ErrLimit", err)
	}

	// A single line longer than the scanner cap is ErrLimit.
	long := strings.Repeat("x", maxLineBytes+16)
	_, _, err = parseNodes(strings.NewReader(long), "t.nodes")
	if !errors.Is(err, ErrLimit) {
		t.Errorf("overlong line: err = %v, want ErrLimit", err)
	}

	// A token flood on one line is ErrLimit.
	flood := strings.Repeat("a ", maxLineTokens+8) + "\n"
	_, _, err = parsePl(strings.NewReader(flood), "t.pl")
	if !errors.Is(err, ErrLimit) {
		t.Errorf("token flood: err = %v, want ErrLimit", err)
	}

	// Hostile NetDegree is ErrLimit.
	b := netlist.NewBuilder("t")
	err = parseNets(strings.NewReader("NetDegree : 134217729 n0\n"), "t.nets", nil, b, nil)
	if !errors.Is(err, ErrLimit) {
		t.Errorf("huge NetDegree: err = %v, want ErrLimit", err)
	}
}

func TestParseDeclaredCountMismatch(t *testing.T) {
	// Fewer nodes than declared.
	_, _, err := parseNodes(strings.NewReader("NumNodes : 3\na 1 1\nb 1 1\n"), "t.nodes")
	if !errors.Is(err, ErrFormat) {
		t.Errorf("undercount: err = %v, want ErrFormat", err)
	}
	// More nodes than declared.
	_, _, err = parseNodes(strings.NewReader("NumNodes : 1\na 1 1\nb 1 1\n"), "t.nodes")
	if !errors.Is(err, ErrFormat) {
		t.Errorf("overcount: err = %v, want ErrFormat", err)
	}
	// Duplicate node name.
	_, _, err = parseNodes(strings.NewReader("a 1 1\na 2 2\n"), "t.nodes")
	if !errors.Is(err, ErrFormat) {
		t.Errorf("duplicate: err = %v, want ErrFormat", err)
	}

	nodes := map[string]node{"a": {name: "a", w: 1, h: 1}}
	build := func() *netlist.Builder {
		b := netlist.NewBuilder("t")
		b.AddCell("a", netlist.Movable, 1, 1, 0, 0)
		return b
	}
	// Truncated final net.
	err = parseNets(strings.NewReader("NetDegree : 2 n0\na I : 0 0\n"), "t.nets", nil, build(), nodes)
	if !errors.Is(err, ErrFormat) {
		t.Errorf("truncated net: err = %v, want ErrFormat", err)
	}
	// Declared pin count mismatch.
	err = parseNets(strings.NewReader("NumPins : 2\nNetDegree : 1 n0\na I : 0 0\n"), "t.nets", nil, build(), nodes)
	if !errors.Is(err, ErrFormat) {
		t.Errorf("pin undercount: err = %v, want ErrFormat", err)
	}
	// Matching counts still parse.
	err = parseNets(strings.NewReader("NumNets : 1\nNumPins : 1\nNetDegree : 1 n0\na I : 0 0\n"), "t.nets", nil, build(), nodes)
	if err != nil {
		t.Errorf("consistent file rejected: %v", err)
	}
}

// TestSclValuelessKeyDoesNotPanic pins the fix for the "Coordinate :" panic
// (strings.Fields on an empty value used to be indexed unconditionally).
func TestSclValuelessKeyDoesNotPanic(t *testing.T) {
	rows, _, err := parseScl(strings.NewReader("CoreRow Horizontal\nCoordinate :\nHeight : 1\nEnd\n"), "t.scl")
	if err != nil {
		t.Fatalf("valueless key: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
}
