// Package bookshelf reads and writes the Bookshelf placement format used by
// the ISPD contest benchmarks (.aux, .nodes, .nets, .pl, .scl). The ISPD
// suites the paper evaluates on ship in this format, so a user with the
// real benchmark files can run the exact contest designs through this flow;
// the synthetic suites of internal/synth are the offline substitute.
//
// Conventions: Bookshelf pin offsets are measured from the *center* of a
// node; this package converts them to the lower-left-relative offsets used
// by internal/netlist on read, and back on write.
package bookshelf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Typed parse failures. errors.Is(err, ErrFormat) marks malformed input;
// errors.Is(err, ErrLimit) marks input that is structurally parseable but
// exceeds the parser's safety limits (hostile or corrupt files must not be
// able to make the reader allocate or loop without bound).
var (
	ErrFormat = errors.New("malformed bookshelf input")
	ErrLimit  = errors.New("bookshelf input exceeds parser limits")
)

const (
	// maxLineBytes bounds one input line; longer lines fail with ErrLimit
	// instead of growing the scanner buffer.
	maxLineBytes = 1 << 20
	// maxLineTokens bounds whitespace-separated tokens on one line. Real
	// Bookshelf lines carry at most a handful.
	maxLineTokens = 1024
	// maxDeclaredCount bounds NumNodes/NumNets/NumPins/NetDegree headers, so
	// a hostile header cannot demand absurd work.
	maxDeclaredCount = 1 << 26
)

// Files names the five Bookshelf members of one design.
type Files struct {
	Nodes, Nets, Wts, Pl, Scl string
}

// ReadAux parses a .aux file and returns the referenced file names resolved
// relative to the .aux location.
func ReadAux(path string) (Files, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Files{}, err
	}
	line := strings.TrimSpace(string(data))
	// Format: "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl"
	colon := strings.Index(line, ":")
	if colon < 0 {
		return Files{}, fmt.Errorf("bookshelf: %s: malformed aux line %q", path, line)
	}
	dir := filepath.Dir(path)
	var f Files
	for _, tok := range strings.Fields(line[colon+1:]) {
		full := filepath.Join(dir, tok)
		switch strings.ToLower(filepath.Ext(tok)) {
		case ".nodes":
			f.Nodes = full
		case ".nets":
			f.Nets = full
		case ".wts":
			f.Wts = full
		case ".pl":
			f.Pl = full
		case ".scl":
			f.Scl = full
		}
	}
	if f.Nodes == "" || f.Nets == "" || f.Pl == "" {
		return Files{}, fmt.Errorf("bookshelf: %s: aux must reference .nodes, .nets and .pl", path)
	}
	return f, nil
}

// ReadDesign loads a complete design from a .aux file.
func ReadDesign(auxPath string) (*netlist.Design, error) {
	files, err := ReadAux(auxPath)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(auxPath), filepath.Ext(auxPath))
	return ReadFiles(name, files)
}

// node is the intermediate .nodes record.
type node struct {
	name     string
	w, h     float64
	terminal bool
}

// ReadFiles loads a design from explicit member files (Wts and Scl are
// optional: missing weights default to 1, a missing .scl produces a design
// with no rows whose region is the bounding box of the placement).
func ReadFiles(name string, f Files) (*netlist.Design, error) {
	nodes, order, err := readNodes(f.Nodes)
	if err != nil {
		return nil, err
	}
	pl, fixed, err := readPl(f.Pl)
	if err != nil {
		return nil, err
	}

	b := netlist.NewBuilder(name)
	for _, nm := range order {
		nd := nodes[nm]
		x, y := 0.0, 0.0
		if p, ok := pl[nm]; ok {
			x, y = p[0], p[1]
		}
		kind := netlist.Movable
		if nd.terminal {
			kind = netlist.Terminal
			if nd.w > 0 && nd.h > 0 {
				kind = netlist.Fixed
			}
		} else if fixed[nm] {
			kind = netlist.Fixed
		}
		b.AddCell(nm, kind, nd.w, nd.h, x, y)
	}

	if err := readNets(f.Nets, f.Wts, b, nodes); err != nil {
		return nil, err
	}

	var region geom.Rect
	if f.Scl != "" {
		rows, r, err := readScl(f.Scl)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			b.AddRow(row)
		}
		region = r
	}
	if region.Empty() {
		// Fall back to the bounding box of all nodes.
		for nm, p := range pl {
			nd := nodes[nm]
			region = region.Union(geom.Rect{XL: p[0], YL: p[1], XH: p[0] + nd.w, YH: p[1] + nd.h})
		}
	}
	b.SetRegion(region)
	return b.Build()
}

// scanner wraps bufio.Scanner with comment/blank skipping.
func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	return sc
}

func contentLine(sc *bufio.Scanner) (string, bool) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") {
			continue
		}
		return line, true
	}
	return "", false
}

// scanErr converts scanner failures into typed errors (an over-long line
// surfaces as bufio.ErrTooLong and becomes ErrLimit).
func scanErr(sc *bufio.Scanner, path string) error {
	err := sc.Err()
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("%w: %s: line longer than %d bytes", ErrLimit, path, maxLineBytes)
	}
	return err
}

// splitFields tokenizes one line under the token cap.
func splitFields(line, path string) ([]string, error) {
	f := strings.Fields(line)
	if len(f) > maxLineTokens {
		return nil, fmt.Errorf("%w: %s: %d tokens on one line (max %d)", ErrLimit, path, len(f), maxLineTokens)
	}
	return f, nil
}

// headerCount parses the N of a "NumNodes : N"-style header line.
func headerCount(line, path string) (int, error) {
	_, val, ok := strings.Cut(line, ":")
	fs := strings.Fields(val)
	if !ok || len(fs) == 0 {
		return 0, fmt.Errorf("%w: %s: bad count header %q", ErrFormat, path, line)
	}
	n, err := strconv.Atoi(fs[0])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: %s: bad count header %q", ErrFormat, path, line)
	}
	if n > maxDeclaredCount {
		return 0, fmt.Errorf("%w: %s: declared count %d (max %d)", ErrLimit, path, n, maxDeclaredCount)
	}
	return n, nil
}

func readNodes(path string) (map[string]node, []string, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fh.Close()
	return parseNodes(fh, path)
}

func parseNodes(r io.Reader, path string) (map[string]node, []string, error) {
	sc := newScanner(r)
	nodes := map[string]node{}
	var order []string
	declared := -1
	for {
		line, ok := contentLine(sc)
		if !ok {
			break
		}
		if strings.HasPrefix(line, "NumNodes") {
			n, err := headerCount(line, path)
			if err != nil {
				return nil, nil, err
			}
			declared = n
			continue
		}
		if strings.HasPrefix(line, "NumTerminals") {
			if _, err := headerCount(line, path); err != nil {
				return nil, nil, err
			}
			continue
		}
		fields, err := splitFields(line, path)
		if err != nil {
			return nil, nil, err
		}
		if len(fields) < 3 {
			return nil, nil, fmt.Errorf("%w: %s: bad node line %q", ErrFormat, path, line)
		}
		w, err1 := strconv.ParseFloat(fields[1], 64)
		h, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("%w: %s: bad node size %q", ErrFormat, path, line)
		}
		nd := node{name: fields[0], w: w, h: h}
		if len(fields) > 3 && strings.EqualFold(fields[3], "terminal") {
			nd.terminal = true
		}
		if _, dup := nodes[nd.name]; dup {
			return nil, nil, fmt.Errorf("%w: %s: duplicate node %q", ErrFormat, path, nd.name)
		}
		if declared >= 0 && len(order) >= declared {
			return nil, nil, fmt.Errorf("%w: %s: more nodes than the declared %d", ErrFormat, path, declared)
		}
		nodes[nd.name] = nd
		order = append(order, nd.name)
	}
	if err := scanErr(sc, path); err != nil {
		return nil, nil, err
	}
	if declared >= 0 && len(order) != declared {
		return nil, nil, fmt.Errorf("%w: %s: declared %d nodes, found %d", ErrFormat, path, declared, len(order))
	}
	return nodes, order, nil
}

func readPl(path string) (map[string][2]float64, map[string]bool, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fh.Close()
	return parsePl(fh, path)
}

func parsePl(r io.Reader, path string) (map[string][2]float64, map[string]bool, error) {
	sc := newScanner(r)
	pos := map[string][2]float64{}
	fixed := map[string]bool{}
	for {
		line, ok := contentLine(sc)
		if !ok {
			break
		}
		fields, err := splitFields(line, path)
		if err != nil {
			return nil, nil, err
		}
		if len(fields) < 3 {
			continue
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("%w: %s: bad pl line %q", ErrFormat, path, line)
		}
		pos[fields[0]] = [2]float64{x, y}
		if strings.Contains(line, "/FIXED") {
			fixed[fields[0]] = true
		}
	}
	return pos, fixed, scanErr(sc, path)
}

func readNets(path, wtsPath string, b *netlist.Builder, nodes map[string]node) error {
	weights := readWts(wtsPath)
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	return parseNets(fh, path, weights, b, nodes)
}

// readWts loads the optional net-weight file; any problem (missing file,
// malformed line) degrades to default weights, matching contest practice.
func readWts(path string) map[string]float64 {
	weights := map[string]float64{}
	if path == "" {
		return weights
	}
	fh, err := os.Open(path)
	if err != nil {
		return weights
	}
	defer fh.Close()
	sc := newScanner(fh)
	for {
		line, ok := contentLine(sc)
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) == 2 {
			if w, err := strconv.ParseFloat(fields[1], 64); err == nil {
				weights[fields[0]] = w
			}
		}
	}
	return weights
}

func parseNets(r io.Reader, path string, weights map[string]float64, b *netlist.Builder, nodes map[string]node) error {
	sc := newScanner(r)
	netIdx := -1
	remaining := 0
	declaredNets, declaredPins := -1, -1
	numNets, numPins := 0, 0
	for {
		line, ok := contentLine(sc)
		if !ok {
			break
		}
		if strings.HasPrefix(line, "NumNets") {
			n, err := headerCount(line, path)
			if err != nil {
				return err
			}
			declaredNets = n
			continue
		}
		if strings.HasPrefix(line, "NumPins") {
			n, err := headerCount(line, path)
			if err != nil {
				return err
			}
			declaredPins = n
			continue
		}
		if strings.HasPrefix(line, "NetDegree") {
			if remaining > 0 {
				return fmt.Errorf("%w: %s: net truncated (%d pins missing before %q)", ErrFormat, path, remaining, line)
			}
			// "NetDegree : d [name]"
			fields, err := splitFields(line, path)
			if err != nil {
				return err
			}
			if len(fields) < 3 {
				return fmt.Errorf("%w: %s: bad NetDegree line %q", ErrFormat, path, line)
			}
			deg, err := strconv.Atoi(fields[2])
			if err != nil || deg < 0 {
				return fmt.Errorf("%w: %s: bad degree %q", ErrFormat, path, line)
			}
			if deg > maxDeclaredCount {
				return fmt.Errorf("%w: %s: net degree %d (max %d)", ErrLimit, path, deg, maxDeclaredCount)
			}
			if declaredNets >= 0 && numNets >= declaredNets {
				return fmt.Errorf("%w: %s: more nets than the declared %d", ErrFormat, path, declaredNets)
			}
			name := fmt.Sprintf("net%d", netIdx+1)
			if len(fields) > 3 {
				name = fields[3]
			}
			w := 1.0
			if ww, ok := weights[name]; ok {
				w = ww
			}
			netIdx = b.AddNet(name, w)
			numNets++
			remaining = deg
			continue
		}
		if remaining <= 0 {
			return fmt.Errorf("%w: %s: pin line %q outside a net", ErrFormat, path, line)
		}
		// "nodename I/O/B : dx dy" (offsets from node center; optional)
		fields, err := splitFields(line, path)
		if err != nil {
			return err
		}
		ci, ok2 := b.CellIndex(fields[0])
		if !ok2 {
			return fmt.Errorf("%w: %s: pin references unknown node %q", ErrFormat, path, fields[0])
		}
		nd := nodes[fields[0]]
		dx, dy := 0.0, 0.0
		if colon := indexOf(fields, ":"); colon >= 0 && len(fields) >= colon+3 {
			dxv, err1 := strconv.ParseFloat(fields[colon+1], 64)
			dyv, err2 := strconv.ParseFloat(fields[colon+2], 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("%w: %s: bad pin offsets %q", ErrFormat, path, line)
			}
			dx, dy = dxv, dyv
		}
		if declaredPins >= 0 && numPins >= declaredPins {
			return fmt.Errorf("%w: %s: more pins than the declared %d", ErrFormat, path, declaredPins)
		}
		// Center-relative -> lower-left-relative.
		b.AddPin(netIdx, ci, dx+nd.w/2, dy+nd.h/2)
		numPins++
		remaining--
	}
	if err := scanErr(sc, path); err != nil {
		return err
	}
	if remaining > 0 {
		return fmt.Errorf("%w: %s: last net truncated (%d pins missing)", ErrFormat, path, remaining)
	}
	if declaredNets >= 0 && numNets != declaredNets {
		return fmt.Errorf("%w: %s: declared %d nets, found %d", ErrFormat, path, declaredNets, numNets)
	}
	if declaredPins >= 0 && numPins != declaredPins {
		return fmt.Errorf("%w: %s: declared %d pins, found %d", ErrFormat, path, declaredPins, numPins)
	}
	return nil
}

func indexOf(fields []string, tok string) int {
	for i, f := range fields {
		if f == tok {
			return i
		}
	}
	return -1
}

func readScl(path string) ([]netlist.Row, geom.Rect, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, geom.Rect{}, err
	}
	defer fh.Close()
	return parseScl(fh, path)
}

func parseScl(r io.Reader, path string) ([]netlist.Row, geom.Rect, error) {
	sc := newScanner(r)
	var rows []netlist.Row
	var cur *netlist.Row
	var numSites float64
	var region geom.Rect
	flush := func() {
		if cur == nil {
			return
		}
		cur.XH = cur.XL + numSites*cur.SiteW
		rows = append(rows, *cur)
		region = region.Union(geom.Rect{XL: cur.XL, YL: cur.Y, XH: cur.XH, YH: cur.Y + cur.Height})
		cur = nil
	}
	for {
		line, ok := contentLine(sc)
		if !ok {
			break
		}
		low := strings.ToLower(line)
		switch {
		case strings.HasPrefix(low, "numrows"):
		case strings.HasPrefix(low, "corerow"):
			flush()
			cur = &netlist.Row{SiteW: 1}
			numSites = 0
		case strings.HasPrefix(low, "end"):
			flush()
		case cur != nil:
			key, val, found := strings.Cut(low, ":")
			vf := strings.Fields(val)
			if !found || len(vf) == 0 {
				continue // "key :" with no value: ignore, don't panic
			}
			key = strings.TrimSpace(key)
			v, err := strconv.ParseFloat(vf[0], 64)
			if err != nil {
				continue
			}
			switch key {
			case "coordinate":
				cur.Y = v
			case "height":
				cur.Height = v
			case "sitewidth":
				cur.SiteW = v
			case "numsites":
				numSites = v
			case "subroworigin":
				cur.XL = v
			}
		}
	}
	flush()
	return rows, region, scanErr(sc, path)
}
