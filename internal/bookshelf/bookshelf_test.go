package bookshelf

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
)

// writeTestFiles creates a tiny hand-written Bookshelf design on disk.
func writeTestFiles(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("toy.aux", "RowBasedPlacement : toy.nodes toy.nets toy.wts toy.pl toy.scl\n")
	write("toy.nodes", `UCLA nodes 1.0
NumNodes : 4
NumTerminals : 2
  a 2 1
  b 3 1
  blk 5 5 terminal
  pad 0 0 terminal
`)
	write("toy.nets", `UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3 n0
  a I : 0.5 0.25
  b O : -1 0
  blk B : 0 0
NetDegree : 2 n1
  b I : 1.5 0.5
  pad O : 0 0
`)
	write("toy.wts", `UCLA wts 1.0
  n0 1
  n1 2.5
`)
	write("toy.pl", `UCLA pl 1.0
  a 1 2 : N
  b 5 3 : N
  blk 10 10 : N /FIXED
  pad 0 20 : N /FIXED
`)
	write("toy.scl", `UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
  Coordinate : 0
  Height : 1
  Sitewidth : 1
  Sitespacing : 1
  NumSites : 20
  SubrowOrigin : 0
End
CoreRow Horizontal
  Coordinate : 1
  Height : 1
  Sitewidth : 1
  Sitespacing : 1
  NumSites : 20
  SubrowOrigin : 0
End
`)
	return filepath.Join(dir, "toy.aux")
}

func TestReadDesign(t *testing.T) {
	aux := writeTestFiles(t)
	d, err := ReadDesign(aux)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid design: %v", err)
	}
	if d.NumCells() != 4 || d.NumNets() != 2 || d.NumPins() != 5 {
		t.Fatalf("counts: %d cells %d nets %d pins", d.NumCells(), d.NumNets(), d.NumPins())
	}
	// Kinds: a,b movable; blk is a sized terminal -> Fixed; pad zero-size -> Terminal.
	if d.Cells[0].Kind != netlist.Movable || d.Cells[1].Kind != netlist.Movable {
		t.Error("a/b should be movable")
	}
	if d.Cells[2].Kind != netlist.Fixed {
		t.Errorf("blk kind = %v, want Fixed", d.Cells[2].Kind)
	}
	if d.Cells[3].Kind != netlist.Terminal {
		t.Errorf("pad kind = %v, want Terminal", d.Cells[3].Kind)
	}
	// Net weight from .wts.
	if d.Nets[1].Weight != 2.5 {
		t.Errorf("n1 weight = %g", d.Nets[1].Weight)
	}
	// Pin offsets converted center->lower-left: a is 2x1, pin (0.5,0.25)
	// center-relative => (1.5, 0.75) from lower-left.
	p := d.NetPins(0)[0]
	if math.Abs(p.Dx-1.5) > 1e-12 || math.Abs(p.Dy-0.75) > 1e-12 {
		t.Errorf("pin offset = (%g,%g), want (1.5,0.75)", p.Dx, p.Dy)
	}
	// Rows from .scl.
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	if d.Rows[0].XH != 20 {
		t.Errorf("row XH = %g, want 20 (NumSites*SiteW)", d.Rows[0].XH)
	}
	// Region covers the rows.
	if d.Region.W() != 20 || d.Region.H() != 2 {
		t.Errorf("region = %v", d.Region)
	}
	// Positions from .pl.
	if d.X[1] != 5 || d.Y[1] != 3 {
		t.Errorf("b at (%g,%g)", d.X[1], d.Y[1])
	}
}

func TestRoundTrip(t *testing.T) {
	spec := synth.Spec{
		Name: "rt", NumMovable: 120, NumMacros: 1, NumPads: 6, NumFixedBlocks: 1,
		NumNets: 130, AvgDegree: 3.5, Utilization: 0.7, TargetDensity: 1, Seed: 2,
	}
	orig, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	aux, err := WriteDesign(orig, dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadDesign(aux)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCells() != orig.NumCells() || back.NumNets() != orig.NumNets() || back.NumPins() != orig.NumPins() {
		t.Fatalf("counts changed: %d/%d/%d vs %d/%d/%d",
			back.NumCells(), back.NumNets(), back.NumPins(),
			orig.NumCells(), orig.NumNets(), orig.NumPins())
	}
	for i := range orig.Cells {
		if math.Abs(back.X[i]-orig.X[i]) > 1e-9 || math.Abs(back.Y[i]-orig.Y[i]) > 1e-9 {
			t.Fatalf("cell %d moved in roundtrip", i)
		}
		if back.Cells[i].W != orig.Cells[i].W || back.Cells[i].H != orig.Cells[i].H {
			t.Fatalf("cell %d resized in roundtrip", i)
		}
	}
	for i := range orig.Pins {
		if math.Abs(back.Pins[i].Dx-orig.Pins[i].Dx) > 1e-9 ||
			math.Abs(back.Pins[i].Dy-orig.Pins[i].Dy) > 1e-9 {
			t.Fatalf("pin %d offset changed", i)
		}
	}
	if len(back.Rows) != len(orig.Rows) {
		t.Fatalf("rows changed: %d vs %d", len(back.Rows), len(orig.Rows))
	}
	for i := range orig.Nets {
		if back.Nets[i].Weight != orig.Nets[i].Weight {
			t.Fatalf("net %d weight changed", i)
		}
	}
	// Movable macros survive as movable (kind Movable after roundtrip is
	// acceptable: Bookshelf has no macro marker; they stay movable).
	if !back.Cells[120].Kind.Moves() {
		t.Error("macro lost movability in roundtrip")
	}
}

func TestReadAuxErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.aux")
	os.WriteFile(bad, []byte("no colon here"), 0o644)
	if _, err := ReadAux(bad); err == nil {
		t.Error("malformed aux accepted")
	}
	if _, err := ReadAux(filepath.Join(dir, "missing.aux")); err == nil {
		t.Error("missing aux accepted")
	}
	incomplete := filepath.Join(dir, "inc.aux")
	os.WriteFile(incomplete, []byte("RowBasedPlacement : a.nodes\n"), 0o644)
	if _, err := ReadAux(incomplete); err == nil {
		t.Error("aux without .nets/.pl accepted")
	}
}

func TestReadNetsErrors(t *testing.T) {
	aux := writeTestFiles(t)
	files, err := ReadAux(aux)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the nets file with an unknown node reference.
	os.WriteFile(files.Nets, []byte(`UCLA nets 1.0
NetDegree : 1 n0
  ghost I : 0 0
`), 0o644)
	if _, err := ReadFiles("toy", files); err == nil {
		t.Error("unknown node in nets accepted")
	}
}

func TestMissingOptionalFiles(t *testing.T) {
	aux := writeTestFiles(t)
	files, err := ReadAux(aux)
	if err != nil {
		t.Fatal(err)
	}
	files.Wts = "" // weights optional
	d, err := ReadFiles("toy", files)
	if err != nil {
		t.Fatal(err)
	}
	if d.Nets[1].Weight != 1 {
		t.Errorf("default weight = %g, want 1", d.Nets[1].Weight)
	}
}
