package moreau_test

import (
	"fmt"

	"repro/internal/moreau"
)

// ExampleEnvelopeGrad evaluates the Moreau envelope of a 4-pin net's HPWL
// and its exact gradient at smoothing t = 1.
func ExampleEnvelopeGrad() {
	x := []float64{0, 2, 5, 10}
	grad := make([]float64, len(x))
	r := moreau.EnvelopeGrad(x, 1.0, grad)
	fmt.Printf("envelope %.2f (HPWL %.2f)\n", r.Value, moreau.HPWL1D(x))
	fmt.Printf("water levels tau1=%.2f tau2=%.2f\n", r.Tau1, r.Tau2)
	fmt.Printf("gradient %.2f\n", grad)
	// Output:
	// envelope 9.00 (HPWL 10.00)
	// water levels tau1=1.00 tau2=9.00
	// gradient [-1.00 0.00 0.00 1.00]
}

// ExampleWaterFillLower solves sum(tau - x_i)^+ = t on sorted coordinates:
// pouring t = 2 units of water over bottoms at 0,1,2,3 raises the level to
// 1.5 (the first gap takes 1 unit, then two columns fill together).
func ExampleWaterFillLower() {
	tau := moreau.WaterFillLower([]float64{0, 1, 2, 3}, 2)
	fmt.Printf("tau1 = %.2f\n", tau)
	// Output:
	// tau1 = 1.50
}

// ExampleProx shows the proximal point of Theorem 1: extreme pins are pulled
// to the water levels, interior pins stay put.
func ExampleProx() {
	x := []float64{0, 4, 6, 10}
	u := make([]float64, len(x))
	moreau.Prox(x, 2.0, u)
	fmt.Printf("prox %.1f\n", u)
	// Output:
	// prox [2.0 4.0 6.0 8.0]
}
