// Package moreau implements the paper's core contribution: the Moreau
// envelope of the per-net half-perimeter wirelength (HPWL) function,
//
//	W_e(x) = max_i x_i - min_i x_i,
//
// together with its proximal mapping and exact gradient.
//
// For a smoothing parameter t > 0 the Moreau envelope is
//
//	W_e^t(x) = min_u W_e(u) + ||u - x||^2 / (2t),
//
// which is convex, everywhere differentiable, and satisfies
// W_e(x) - t/2*(1/n_max + 1/n_min) <= W_e^t(x) <= W_e(x) (Theorem 2).
//
// Theorem 1 of the paper gives the proximal mapping in closed form up to two
// water levels tau1 <= tau2 solving
//
//	sum_i (x_i - tau2)^+ = sum_i (tau1 - x_i)^+ = t,
//
// each of which is found by the linear-time water-filling sweep of
// Algorithm 2 over the sorted coordinates. When the water levels cross
// (tau1 > tau2, i.e. t is large relative to the net's spread) the proximal
// point collapses to the mean coordinate and the envelope becomes the
// quadratic t-scaled variance (the degenerate branch of Theorem 1).
//
// The gradient follows from the envelope theorem (Corollary 1):
//
//	g_i = (x_i - tau2)/t  if x_i > tau2,
//	      0               if tau1 <= x_i <= tau2,
//	      (x_i - tau1)/t  if x_i < tau1,
//
// or g_i = (x_i - mean)/t in the degenerate case.
//
// All functions operate on one axis; horizontal and vertical parts of HPWL
// are symmetric and evaluated independently by the wirelength layer.
package moreau

import (
	"math"
	"sort"
	"sync/atomic"
)

// Stats counts branch behaviour across envelope evaluations: how many nets
// were evaluated, how many hit the degenerate (collapsed water levels)
// branch, and how many exceeded the insertion-sort fast path. Counters are
// atomic so one Stats may be shared by the per-worker evaluators of a
// parallel wirelength model. A nil *Stats disables counting at the cost of
// one pointer check per site.
type Stats struct {
	Evals      atomic.Int64
	Degenerate atomic.Int64
	LargeSorts atomic.Int64
}

// Result describes one envelope/prox evaluation of a net.
type Result struct {
	// Value is the Moreau envelope W_e^t(x).
	Value float64
	// Tau1, Tau2 are the water levels of Theorem 1. In the degenerate
	// case both equal the mean coordinate.
	Tau1, Tau2 float64
	// Degenerate reports whether the water levels crossed and the
	// proximal point collapsed to the mean.
	Degenerate bool
}

// WaterFillLower solves sum_i (tau - x_i)^+ = t for tau given coordinates
// sorted in ascending order, using the single-sweep water-filling of
// Algorithm 2. It runs in O(n) and requires len(sorted) >= 1 and t >= 0.
//
// Intuitively: pour an amount t of water into a reservoir whose bottom
// heights are the sorted coordinates; the returned tau is the final level.
func WaterFillLower(sorted []float64, t float64) float64 {
	n := len(sorted)
	q := 0.0 // water used to reach level sorted[k-1]
	for k := 1; k < n; k++ {
		dq := float64(k) * (sorted[k] - sorted[k-1])
		if q+dq > t {
			// Level lands between sorted[k-1] and sorted[k].
			return sorted[k] - (q+dq-t)/float64(k)
		}
		q += dq
	}
	// All bottoms submerged: the remaining water spreads over n columns.
	return sorted[n-1] + (t-q)/float64(n)
}

// WaterFillUpper solves sum_i (x_i - tau)^+ = t for tau given coordinates
// sorted in ascending order. It is the mirror image of WaterFillLower,
// sweeping down from the maximum coordinate.
func WaterFillUpper(sorted []float64, t float64) float64 {
	n := len(sorted)
	q := 0.0
	for k := 1; k < n; k++ {
		dq := float64(k) * (sorted[n-k] - sorted[n-k-1])
		if q+dq > t {
			return sorted[n-k-1] + (q+dq-t)/float64(k)
		}
		q += dq
	}
	return sorted[0] - (t-q)/float64(n)
}

// Levels computes the water levels (tau1, tau2) of Theorem 1 for the sorted
// coordinates and smoothing parameter t > 0, resolving the degenerate case
// to the mean coordinate as Algorithm 1 prescribes.
func Levels(sorted []float64, t float64) Result {
	tau1 := WaterFillLower(sorted, t)
	tau2 := WaterFillUpper(sorted, t)
	if tau1 > tau2 {
		mean := 0.0
		for _, v := range sorted {
			mean += v
		}
		mean /= float64(len(sorted))
		return Result{Tau1: mean, Tau2: mean, Degenerate: true}
	}
	return Result{Tau1: tau1, Tau2: tau2}
}

// mean returns the arithmetic mean of x (len(x) > 0).
func mean(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// envelopeFromLevels finishes the envelope value given resolved levels.
func envelopeFromLevels(x []float64, t float64, r *Result) {
	if r.Degenerate {
		// prox = mean vector; W_e(mean vector) = 0.
		m := r.Tau1
		ss := 0.0
		for _, v := range x {
			d := v - m
			ss += d * d
		}
		r.Value = ss / (2 * t)
		return
	}
	ss := 0.0
	for _, v := range x {
		if v > r.Tau2 {
			d := v - r.Tau2
			ss += d * d
		} else if v < r.Tau1 {
			d := r.Tau1 - v
			ss += d * d
		}
	}
	r.Value = (r.Tau2 - r.Tau1) + ss/(2*t)
}

// Evaluator computes envelopes, proximal points, and gradients for many
// nets while reusing one sort scratch buffer. It is not safe for concurrent
// use; create one Evaluator per worker goroutine.
type Evaluator struct {
	scratch []float64
	// Stats, when non-nil, receives branch counters from every evaluation;
	// typically one shared Stats across all per-worker evaluators.
	Stats *Stats
}

// NewEvaluator returns an Evaluator whose scratch buffer is pre-sized for
// nets of up to maxDegree pins (it grows on demand if exceeded).
func NewEvaluator(maxDegree int) *Evaluator {
	return &Evaluator{scratch: make([]float64, 0, maxDegree)}
}

// insertionSortMax is the largest net degree sorted with insertion sort.
// Real netlists are dominated by 2-4 pin nets, where insertion sort beats
// sort.Float64s' interface and pdqsort overhead by a wide margin; beyond a
// few dozen elements the O(n^2) worst case loses to the generic sort.
const insertionSortMax = 32

// insertionSort sorts s ascending in place. It is exact-equivalent to
// sort.Float64s for any input (see TestSortFastPathMatchesGeneric); NaNs,
// which sort.Float64s leaves in unspecified positions, never reach it —
// checkArgs rejects them upstream via the kernel layer.
func insertionSort(s []float64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// sortedCopy copies x into the scratch buffer and sorts it ascending.
// Small nets (the overwhelming majority in real netlists) take the
// insertion-sort fast path; larger nets fall back to the generic sort.
func (ev *Evaluator) sortedCopy(x []float64) []float64 {
	s := append(ev.scratch[:0], x...)
	ev.scratch = s[:0]
	// Degrees 2-4 dominate real netlists; fixed sorting networks avoid the
	// insertion-sort call and its data-dependent inner loop entirely. A
	// network produces the same ascending output as any comparison sort, so
	// everything downstream stays bit-identical.
	switch len(s) {
	case 0, 1:
		return s
	case 2:
		s[0], s[1] = min(s[0], s[1]), max(s[0], s[1])
		return s
	case 3:
		s[0], s[1] = min(s[0], s[1]), max(s[0], s[1])
		s[1], s[2] = min(s[1], s[2]), max(s[1], s[2])
		s[0], s[1] = min(s[0], s[1]), max(s[0], s[1])
		return s
	case 4:
		s[0], s[1] = min(s[0], s[1]), max(s[0], s[1])
		s[2], s[3] = min(s[2], s[3]), max(s[2], s[3])
		s[0], s[2] = min(s[0], s[2]), max(s[0], s[2])
		s[1], s[3] = min(s[1], s[3]), max(s[1], s[3])
		s[1], s[2] = min(s[1], s[2]), max(s[1], s[2])
		return s
	}
	if len(s) <= insertionSortMax {
		insertionSort(s)
	} else {
		if ev.Stats != nil {
			ev.Stats.LargeSorts.Add(1)
		}
		sort.Float64s(s)
	}
	return s
}

// count records one evaluation's branch outcome into the attached Stats.
func (ev *Evaluator) count(degenerate bool) {
	if ev.Stats == nil {
		return
	}
	ev.Stats.Evals.Add(1)
	if degenerate {
		ev.Stats.Degenerate.Add(1)
	}
}

// checkArgs panics on invalid inputs; these are programming errors, not
// runtime conditions.
func checkArgs(x []float64, t float64) {
	if len(x) == 0 {
		panic("moreau: empty coordinate slice")
	}
	if !(t > 0) || math.IsInf(t, 0) {
		panic("moreau: smoothing parameter t must be positive and finite")
	}
}

// Envelope returns the Moreau envelope W_e^t(x) of the net HPWL at the
// (unsorted) coordinates x.
func (ev *Evaluator) Envelope(x []float64, t float64) float64 {
	checkArgs(x, t)
	if len(x) == 1 {
		ev.count(true)
		return 0
	}
	s := ev.sortedCopy(x)
	r := Levels(s, t)
	ev.count(r.Degenerate)
	envelopeFromLevels(x, t, &r)
	return r.Value
}

// EnvelopeGrad computes the envelope value and, when grad is non-nil, writes
// dW_e^t/dx_i into grad[i] (grad must have len(x) entries). It returns the
// full Result including the water levels.
func (ev *Evaluator) EnvelopeGrad(x []float64, t float64, grad []float64) Result {
	checkArgs(x, t)
	if len(x) == 1 {
		ev.count(true)
		if grad != nil {
			grad[0] = 0
		}
		return Result{Tau1: x[0], Tau2: x[0], Degenerate: true}
	}
	s := ev.sortedCopy(x)
	r := Levels(s, t)
	ev.count(r.Degenerate)
	envelopeFromLevels(x, t, &r)
	if grad != nil {
		if r.Degenerate {
			m := r.Tau1
			inv := 1 / t
			for i, v := range x {
				grad[i] = (v - m) * inv
			}
		} else {
			inv := 1 / t
			for i, v := range x {
				switch {
				case v > r.Tau2:
					grad[i] = (v - r.Tau2) * inv
				case v < r.Tau1:
					grad[i] = (v - r.Tau1) * inv
				default:
					grad[i] = 0
				}
			}
		}
	}
	return r
}

// GradBatch evaluates the paper's wirelength model W_e^t + t for a
// contiguous run of nets in one call, streaming over flat coordinate lanes.
// starts (B+1 ascending entries, typically a sub-slice of a netlist's
// NetStart array) delimits net b's coordinates at
// coords[starts[b]-starts[0] : starts[b+1]-starts[0]]; weights[b] scales net
// b's contribution. The return value is sum_b weights[b]*(W_e^t(x_b)+t),
// and when grads is non-nil (same length as coords) grads[i] is overwritten
// with weights[b]*dW_e^t/dx_i — the per-element arithmetic is identical to
// looping EnvelopeGrad net by net and scaling afterwards, so results are
// bit-equal to the per-net path. Empty nets contribute nothing. Batching
// hoists the argument checks and the smoothing-parameter reciprocal out of
// the per-net loop and keeps every access on the contiguous lane.
func (ev *Evaluator) GradBatch(starts []int32, coords []float64, t float64, weights []float64, grads []float64) float64 {
	if !(t > 0) || math.IsInf(t, 0) {
		panic("moreau: smoothing parameter t must be positive and finite")
	}
	if len(starts) == 0 {
		return 0
	}
	if len(weights) != len(starts)-1 {
		panic("moreau: GradBatch weights length mismatch")
	}
	base := starts[0]
	inv := 1 / t
	total := 0.0
	for b := 0; b+1 < len(starts); b++ {
		s0 := int(starts[b] - base)
		s1 := int(starts[b+1] - base)
		if s1 == s0 {
			continue
		}
		w := weights[b]
		x := coords[s0:s1]
		if len(x) == 1 {
			ev.count(true)
			if grads != nil {
				grads[s0] = 0
			}
			total += w * t
			continue
		}
		s := ev.sortedCopy(x)
		r := Levels(s, t)
		ev.count(r.Degenerate)
		envelopeFromLevels(x, t, &r)
		total += w * (r.Value + t)
		if grads == nil {
			continue
		}
		g := grads[s0:s1]
		if r.Degenerate {
			m := r.Tau1
			for i, v := range x {
				g[i] = w * ((v - m) * inv)
			}
		} else {
			for i, v := range x {
				switch {
				case v > r.Tau2:
					g[i] = w * ((v - r.Tau2) * inv)
				case v < r.Tau1:
					g[i] = w * ((v - r.Tau1) * inv)
				default:
					g[i] = 0
				}
			}
		}
	}
	return total
}

// Prox computes prox_{tW_e}(x), writing the proximal point into u (which
// must have len(x) entries), and returns the evaluation Result.
func (ev *Evaluator) Prox(x []float64, t float64, u []float64) Result {
	checkArgs(x, t)
	if len(u) != len(x) {
		panic("moreau: prox output length mismatch")
	}
	if len(x) == 1 {
		ev.count(true)
		u[0] = x[0]
		return Result{Tau1: x[0], Tau2: x[0], Degenerate: true}
	}
	s := ev.sortedCopy(x)
	r := Levels(s, t)
	ev.count(r.Degenerate)
	envelopeFromLevels(x, t, &r)
	if r.Degenerate {
		for i := range u {
			u[i] = r.Tau1
		}
		return r
	}
	for i, v := range x {
		switch {
		case v > r.Tau2:
			u[i] = r.Tau2
		case v < r.Tau1:
			u[i] = r.Tau1
		default:
			u[i] = v
		}
	}
	return r
}

// Package-level conveniences backed by a throwaway evaluator. Prefer an
// Evaluator in hot loops to avoid per-call allocation.

// Envelope returns W_e^t(x).
func Envelope(x []float64, t float64) float64 {
	var ev Evaluator
	return ev.Envelope(x, t)
}

// EnvelopeGrad returns W_e^t(x) and fills grad if non-nil.
func EnvelopeGrad(x []float64, t float64, grad []float64) Result {
	var ev Evaluator
	return ev.EnvelopeGrad(x, t, grad)
}

// Prox fills u with prox_{tW_e}(x) and returns the evaluation Result.
func Prox(x []float64, t float64, u []float64) Result {
	var ev Evaluator
	return ev.Prox(x, t, u)
}

// HPWL1D returns the exact one-dimensional net HPWL max(x)-min(x).
func HPWL1D(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Wirelength returns the paper's approximated wirelength model W_e^t(x) + t.
// The +t offset compensates the envelope's downward bias (Theorem 2) so the
// reported objective tracks HPWL more closely; it does not affect gradients.
func Wirelength(x []float64, t float64) float64 {
	return Envelope(x, t) + t
}
