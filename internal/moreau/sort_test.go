package moreau

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestSortFastPathMatchesGeneric checks the insertion-sort fast path against
// sort.Float64s across degrees spanning the insertionSortMax threshold,
// including duplicate-heavy and pre-sorted inputs.
func TestSortFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ev := NewEvaluator(8)
	for n := 1; n <= 2*insertionSortMax; n++ {
		for trial := 0; trial < 8; trial++ {
			x := make([]float64, n)
			for i := range x {
				switch trial % 4 {
				case 0:
					x[i] = rng.NormFloat64() * 100
				case 1:
					x[i] = float64(rng.Intn(3)) // heavy duplicates
				case 2:
					x[i] = float64(i) // already sorted
				default:
					x[i] = float64(n - i) // reversed
				}
			}
			want := append([]float64(nil), x...)
			sort.Float64s(want)
			got := ev.sortedCopy(x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d: sortedCopy[%d] = %v, sort.Float64s = %v", n, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEnvelopeGradSortPathEquivalence evaluates the envelope and gradient on
// nets just below and above the insertion-sort threshold and compares
// against a reference evaluation that always uses the generic sort; both
// paths must agree exactly (same Levels arithmetic on the same sorted data).
func TestEnvelopeGradSortPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ev := NewEvaluator(8)
	for _, n := range []int{2, 3, 5, insertionSortMax, insertionSortMax + 1, 3 * insertionSortMax} {
		for trial := 0; trial < 10; trial++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64() * 50
			}
			tSmooth := math.Abs(rng.NormFloat64())*4 + 1e-3

			// Reference: generic sort, then the same level/envelope math.
			s := append([]float64(nil), x...)
			sort.Float64s(s)
			want := Levels(s, tSmooth)
			envelopeFromLevels(x, tSmooth, &want)
			wantGrad := make([]float64, n)
			refGradFromLevels(x, tSmooth, want, wantGrad)

			grad := make([]float64, n)
			got := ev.EnvelopeGrad(x, tSmooth, grad)
			if got.Value != want.Value || got.Tau1 != want.Tau1 || got.Tau2 != want.Tau2 || got.Degenerate != want.Degenerate {
				t.Fatalf("n=%d trial=%d: EnvelopeGrad result %+v != reference %+v", n, trial, got, want)
			}
			for i := range grad {
				if grad[i] != wantGrad[i] {
					t.Fatalf("n=%d trial=%d: grad[%d] = %v, reference %v", n, trial, i, grad[i], wantGrad[i])
				}
			}
		}
	}
}

// refGradFromLevels recomputes Corollary 1's gradient from resolved levels.
func refGradFromLevels(x []float64, t float64, r Result, grad []float64) {
	inv := 1 / t
	for i, v := range x {
		switch {
		case r.Degenerate:
			grad[i] = (v - r.Tau1) * inv
		case v > r.Tau2:
			grad[i] = (v - r.Tau2) * inv
		case v < r.Tau1:
			grad[i] = (v - r.Tau1) * inv
		default:
			grad[i] = 0
		}
	}
}
