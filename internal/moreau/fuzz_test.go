package moreau

import (
	"math"
	"testing"
)

// FuzzEnvelopeInvariants drives the envelope/prox/gradient pipeline with
// arbitrary 4-pin coordinates and smoothing values, asserting the paper's
// structural invariants. Under plain `go test` this exercises the seed
// corpus; `go test -fuzz=FuzzEnvelopeInvariants` explores further.
func FuzzEnvelopeInvariants(f *testing.F) {
	f.Add(0.0, 1.0, 2.0, 3.0, 1.0)
	f.Add(-100.0, 100.0, 0.0, 0.0, 0.01)
	f.Add(5.0, 5.0, 5.0, 5.0, 10.0)
	f.Add(1e6, -1e6, 3.0, -7.0, 1e3)
	f.Fuzz(func(t *testing.T, a, b, c, d, tt float64) {
		for _, v := range []float64{a, b, c, d, tt} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		if tt <= 0 || tt > 1e9 {
			t.Skip()
		}
		if math.Abs(a) > 1e9 || math.Abs(b) > 1e9 || math.Abs(c) > 1e9 || math.Abs(d) > 1e9 {
			t.Skip()
		}
		x := []float64{a, b, c, d}
		g := make([]float64, 4)
		u := make([]float64, 4)
		r := EnvelopeGrad(x, tt, g)
		Prox(x, tt, u)

		w := HPWL1D(x)
		// Theorem 2 band: W - t <= W^t <= W (n_max, n_min >= 1).
		if r.Value > w+1e-6*(1+w) {
			t.Fatalf("envelope %g above HPWL %g", r.Value, w)
		}
		if r.Value < w-tt-1e-6*(1+w+tt) {
			t.Fatalf("envelope %g below W-t %g", r.Value, w-tt)
		}
		// Gradient sums to zero; components bounded by 1 in magnitude.
		sum, scale := 0.0, 0.0
		for _, gv := range g {
			sum += gv
			scale += math.Abs(gv)
			if math.Abs(gv) > 1+1e-9 {
				t.Fatalf("gradient component %g beyond [-1,1]", gv)
			}
		}
		if math.Abs(sum) > 1e-6*(1+scale) {
			t.Fatalf("gradient sum %g != 0", sum)
		}
		// Envelope consistency with the prox point.
		ss := 0.0
		for i := range x {
			dd := u[i] - x[i]
			ss += dd * dd
		}
		if want := HPWL1D(u) + ss/(2*tt); math.Abs(r.Value-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("envelope %g inconsistent with prox %g", r.Value, want)
		}
	})
}
