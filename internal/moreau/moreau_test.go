package moreau

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- water-filling ---

func TestWaterFillLowerHandExamples(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	cases := []struct{ t, want float64 }{
		{0.5, 0.5}, // level inside first gap
		{1, 1},     // level exactly at x[1]
		{2, 1.5},   // between x[1] and x[2]: 2 columns -> 1 + 1/2
		{6, 3},     // exactly submerges everything
		{10, 4},    // 4 extra spread over 4 columns
	}
	for _, c := range cases {
		got := WaterFillLower(x, c.t)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WaterFillLower(t=%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestWaterFillUpperHandExamples(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	cases := []struct{ t, want float64 }{
		{0.5, 2.5},
		{1, 2},
		{2, 1.5},
		{6, 0},
		{10, -1},
	}
	for _, c := range cases {
		got := WaterFillUpper(x, c.t)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WaterFillUpper(t=%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestWaterFillSinglePin(t *testing.T) {
	if got := WaterFillLower([]float64{5}, 2); got != 7 {
		t.Errorf("lower single pin = %g, want 7", got)
	}
	if got := WaterFillUpper([]float64{5}, 2); got != 3 {
		t.Errorf("upper single pin = %g, want 3", got)
	}
}

func TestWaterFillWithDuplicates(t *testing.T) {
	x := []float64{1, 1, 1, 4}
	// Filling 3 equal bottoms: tau = 1 + t/3 for t <= 9.
	got := WaterFillLower(x, 1.5)
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("WaterFillLower dup = %g, want 1.5", got)
	}
}

// residualLower computes sum (tau - x_i)^+ for unsorted x.
func residualLower(x []float64, tau float64) float64 {
	s := 0.0
	for _, v := range x {
		if tau > v {
			s += tau - v
		}
	}
	return s
}

func residualUpper(x []float64, tau float64) float64 {
	s := 0.0
	for _, v := range x {
		if v > tau {
			s += v - tau
		}
	}
	return s
}

// Property: the water level exactly absorbs the requested volume.
func TestWaterFillResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		n := 1 + rng.Intn(12)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		var ev Evaluator
		s := ev.sortedCopy(x)
		tt := rng.Float64()*500 + 1e-6
		tau1 := WaterFillLower(s, tt)
		tau2 := WaterFillUpper(s, tt)
		if r := residualLower(x, tau1); math.Abs(r-tt) > 1e-7*(1+tt) {
			t.Fatalf("iter %d: lower residual %g != t %g (x=%v)", iter, r, tt, x)
		}
		if r := residualUpper(x, tau2); math.Abs(r-tt) > 1e-7*(1+tt) {
			t.Fatalf("iter %d: upper residual %g != t %g (x=%v)", iter, r, tt, x)
		}
	}
}

// --- proximal mapping and envelope ---

// bruteForceEnvelope2 minimizes W(u)+||u-x||^2/(2t) for a 2-pin net by grid
// search followed by local refinement.
func bruteForceEnvelope2(x [2]float64, t float64) float64 {
	H := func(u1, u2 float64) float64 {
		return math.Abs(u1-u2) + ((u1-x[0])*(u1-x[0])+(u2-x[1])*(u2-x[1]))/(2*t)
	}
	lo := math.Min(x[0], x[1]) - 1
	hi := math.Max(x[0], x[1]) + 1
	best := math.Inf(1)
	const N = 400
	for i := 0; i <= N; i++ {
		for j := 0; j <= N; j++ {
			u1 := lo + (hi-lo)*float64(i)/N
			u2 := lo + (hi-lo)*float64(j)/N
			if v := H(u1, u2); v < best {
				best = v
			}
		}
	}
	return best
}

func TestEnvelopeMatchesBruteForce2Pin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 20; iter++ {
		x := [2]float64{rng.Float64() * 10, rng.Float64() * 10}
		tt := 0.1 + rng.Float64()*5
		got := Envelope(x[:], tt)
		want := bruteForceEnvelope2(x, tt)
		// Grid resolution limits accuracy.
		if math.Abs(got-want) > 2e-3*(1+want) {
			t.Errorf("Envelope(%v, t=%g) = %g, brute force %g", x, tt, got, want)
		}
		if got > want+1e-9 {
			t.Errorf("analytic envelope above brute-force minimum: %g > %g", got, want)
		}
	}
}

// For a 2-pin net the Moreau envelope has the closed Huber form:
// with d = |x1-x2|, W^t = d^2/(4t) if d <= 2t, else d - t.
func TestEnvelope2PinHuberForm(t *testing.T) {
	cases := []struct{ x1, x2, t float64 }{
		{0, 1, 0.49},  // d > 2t: linear branch
		{0, 1, 0.5},   // boundary
		{0, 1, 3},     // quadratic branch
		{5, 5, 1},     // zero spread
		{-3, 7, 0.01}, // tiny t
	}
	for _, c := range cases {
		d := math.Abs(c.x1 - c.x2)
		var want float64
		if d <= 2*c.t {
			want = d * d / (4 * c.t)
		} else {
			want = d - c.t
		}
		got := Envelope([]float64{c.x1, c.x2}, c.t)
		if math.Abs(got-want) > 1e-10*(1+want) {
			t.Errorf("2-pin envelope(%g,%g,t=%g) = %g, want Huber %g", c.x1, c.x2, c.t, got, want)
		}
	}
}

func TestProxSatisfiesTheorem1Structure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		n := 2 + rng.Intn(10)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 50
		}
		tt := 0.01 + rng.Float64()*20
		u := make([]float64, n)
		r := Prox(x, tt, u)
		if r.Degenerate {
			m := mean(x)
			for i := range u {
				if math.Abs(u[i]-m) > 1e-9 {
					t.Fatalf("degenerate prox not at mean: u=%v mean=%g", u, m)
				}
			}
			continue
		}
		if r.Tau1 > r.Tau2 {
			t.Fatalf("non-degenerate result with tau1 %g > tau2 %g", r.Tau1, r.Tau2)
		}
		for i, v := range x {
			var want float64
			switch {
			case v > r.Tau2:
				want = r.Tau2
			case v < r.Tau1:
				want = r.Tau1
			default:
				want = v
			}
			if math.Abs(u[i]-want) > 1e-12 {
				t.Fatalf("prox[%d] = %g, want clamp %g", i, u[i], want)
			}
		}
	}
}

// The envelope definition must be internally consistent with the prox:
// W^t(x) = W(prox) + ||prox - x||^2/(2t).
func TestEnvelopeConsistentWithProx(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(15)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		tt := 0.01 + rng.Float64()*50
		u := make([]float64, n)
		Prox(x, tt, u)
		val := Envelope(x, tt)
		ss := 0.0
		for i := range x {
			d := u[i] - x[i]
			ss += d * d
		}
		want := HPWL1D(u) + ss/(2*tt)
		if math.Abs(val-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("envelope %g != W(prox)+dist %g (x=%v t=%g)", val, want, x, tt)
		}
	}
}

// Prox must beat random nearby candidates (first-order optimality probe).
func TestProxIsMinimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	H := func(u, x []float64, tt float64) float64 {
		ss := 0.0
		for i := range u {
			d := u[i] - x[i]
			ss += d * d
		}
		return HPWL1D(u) + ss/(2*tt)
	}
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(8)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 20
		}
		tt := 0.05 + rng.Float64()*10
		u := make([]float64, n)
		Prox(x, tt, u)
		h0 := H(u, x, tt)
		cand := make([]float64, n)
		for trial := 0; trial < 50; trial++ {
			for i := range cand {
				cand[i] = u[i] + rng.NormFloat64()*0.5
			}
			if h := H(cand, x, tt); h < h0-1e-9 {
				t.Fatalf("found better point: H=%g < prox H=%g (x=%v, t=%g)", h, h0, x, tt)
			}
		}
	}
}

// --- gradient (Corollary 1) ---

func TestGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(8)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 30
		}
		tt := 0.1 + rng.Float64()*10
		g := make([]float64, n)
		EnvelopeGrad(x, tt, g)
		const h = 1e-5
		for i := range x {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[i] += h
			xm[i] -= h
			fd := (Envelope(xp, tt) - Envelope(xm, tt)) / (2 * h)
			if math.Abs(fd-g[i]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("grad[%d] = %g, finite diff %g (x=%v, t=%g)", i, g[i], fd, x, tt)
			}
		}
	}
}

// Corollary 3: gradient components sum to zero.
func TestGradientSumsToZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 1000
		}
		tt := 1e-3 + rng.Float64()*100
		g := make([]float64, n)
		EnvelopeGrad(x, tt, g)
		s, scale := 0.0, 0.0
		for _, v := range g {
			s += v
			scale += math.Abs(v)
		}
		return math.Abs(s) <= 1e-9*(1+scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Theorem 6: gradients above tau2 sum to +1, below tau1 sum to -1.
func TestGradientPartialSums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(12)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		tt := 0.01 + rng.Float64()*5
		g := make([]float64, n)
		r := EnvelopeGrad(x, tt, g)
		if r.Degenerate {
			continue
		}
		up, down := 0.0, 0.0
		for i, v := range x {
			if v > r.Tau2 {
				up += g[i]
			}
			if v < r.Tau1 {
				down += g[i]
			}
		}
		if math.Abs(up-1) > 1e-9 {
			t.Fatalf("sum of upper gradients = %g, want 1 (x=%v, t=%g)", up, x, tt)
		}
		if math.Abs(down+1) > 1e-9 {
			t.Fatalf("sum of lower gradients = %g, want -1", down)
		}
	}
}

// Theorem 2: -t/2*(1/n_max + 1/n_min) <= W^t - W <= 0.
func TestApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 1000; iter++ {
		n := 1 + rng.Intn(10)
		x := make([]float64, n)
		for i := range x {
			// Quantize to create coordinate ties with positive probability.
			x[i] = math.Round(rng.NormFloat64() * 3)
		}
		tt := 1e-3 + rng.Float64()*10
		w := HPWL1D(x)
		wt := Envelope(x, tt)
		if wt > w+1e-9 {
			t.Fatalf("W^t %g > W %g (x=%v t=%g)", wt, w, x, tt)
		}
		// Count ties at extremes for the bound.
		lo, hi := x[0], x[0]
		for _, v := range x {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		nmin, nmax := 0, 0
		for _, v := range x {
			if v == lo {
				nmin++
			}
			if v == hi {
				nmax++
			}
		}
		bound := tt / 2 * (1/float64(nmax) + 1/float64(nmin))
		if wt-w < -bound-1e-9 {
			t.Fatalf("W^t-W = %g below bound -%g (x=%v, t=%g)", wt-w, bound, x, tt)
		}
	}
}

// Theorem 4 / Eq. 17: for t small enough the gradient is the canonical HPWL
// subgradient 1/n_max at maxima, -1/n_min at minima, 0 elsewhere.
func TestGradientLimitSmallT(t *testing.T) {
	x := []float64{0, 0, 3, 7, 7, 7} // n_min = 2 at 0, n_max = 3 at 7
	g := make([]float64, len(x))
	EnvelopeGrad(x, 1e-4, g)
	want := []float64{-0.5, -0.5, 0, 1.0 / 3, 1.0 / 3, 1.0 / 3}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-9 {
			t.Errorf("g[%d] = %g, want %g", i, g[i], want[i])
		}
	}
}

// Convexity: W^t must be convex along arbitrary segments (unlike WA).
func TestEnvelopeConvexAlongSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 500; iter++ {
		n := 2 + rng.Intn(8)
		a := make([]float64, n)
		b := make([]float64, n)
		m := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 50
			b[i] = rng.NormFloat64() * 50
		}
		tt := 0.05 + rng.Float64()*20
		th := rng.Float64()
		for i := range m {
			m[i] = th*a[i] + (1-th)*b[i]
		}
		fa := Envelope(a, tt)
		fb := Envelope(b, tt)
		fm := Envelope(m, tt)
		if fm > th*fa+(1-th)*fb+1e-8*(1+fa+fb) {
			t.Fatalf("convexity violated: f(mid)=%g > %g (t=%g)", fm, th*fa+(1-th)*fb, tt)
		}
	}
}

// The envelope is non-increasing in t and converges to HPWL as t -> 0+.
func TestEnvelopeMonotoneInT(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(8)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		prev := HPWL1D(x)
		for _, tt := range []float64{1e-6, 1e-3, 0.1, 1, 10, 100} {
			v := Envelope(x, tt)
			if v > prev+1e-9*(1+prev) {
				t.Fatalf("envelope not non-increasing in t: %g at t=%g after %g", v, tt, prev)
			}
			prev = v
		}
	}
}

func TestEnvelopeConvergesToHPWL(t *testing.T) {
	x := []float64{-5, 1, 2, 9}
	w := HPWL1D(x)
	for _, tt := range []float64{1, 0.1, 0.01, 0.001} {
		if diff := w - Envelope(x, tt); diff > tt*(1+1e-9) {
			t.Errorf("t=%g: gap %g exceeds t", tt, diff)
		}
	}
}

// Translation invariance: shifting all coordinates leaves the value and
// gradient unchanged.
func TestTranslationInvariance(t *testing.T) {
	x := []float64{0, 2, 5, 9}
	g1 := make([]float64, 4)
	g2 := make([]float64, 4)
	v1 := Envelope(x, 1.3)
	EnvelopeGrad(x, 1.3, g1)
	shifted := make([]float64, 4)
	for i := range x {
		shifted[i] = x[i] + 1234.5
	}
	v2 := Envelope(shifted, 1.3)
	EnvelopeGrad(shifted, 1.3, g2)
	if math.Abs(v1-v2) > 1e-8 {
		t.Errorf("value changed under translation: %g vs %g", v1, v2)
	}
	for i := range g1 {
		if math.Abs(g1[i]-g2[i]) > 1e-8 {
			t.Errorf("grad[%d] changed under translation: %g vs %g", i, g1[i], g2[i])
		}
	}
}

func TestDegenerateCases(t *testing.T) {
	// All-equal coordinates: spread 0, degenerate, value 0, grad 0.
	x := []float64{4, 4, 4}
	g := make([]float64, 3)
	r := EnvelopeGrad(x, 1, g)
	if !r.Degenerate {
		t.Error("all-equal net should be degenerate")
	}
	if r.Value != 0 {
		t.Errorf("value = %g, want 0", r.Value)
	}
	for i, v := range g {
		if v != 0 {
			t.Errorf("g[%d] = %g, want 0", i, v)
		}
	}
	// Two pins with t >= spread/2: levels cross.
	r2 := EnvelopeGrad([]float64{0, 1}, 1, g[:2])
	if !r2.Degenerate {
		t.Error("2-pin with large t should be degenerate")
	}
	// Mean-based gradient: (x_i - 0.5)/t.
	if math.Abs(g[0]+0.5) > 1e-12 || math.Abs(g[1]-0.5) > 1e-12 {
		t.Errorf("degenerate grads = %v, want [-0.5, 0.5]", g[:2])
	}
}

func TestSinglePinNet(t *testing.T) {
	g := make([]float64, 1)
	r := EnvelopeGrad([]float64{42}, 0.5, g)
	if r.Value != 0 || g[0] != 0 {
		t.Errorf("single pin: value=%g grad=%g", r.Value, g[0])
	}
	if Wirelength([]float64{42}, 0.5) != 0.5 {
		t.Error("Wirelength should be envelope + t")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { Envelope(nil, 1) })
	mustPanic("zero t", func() { Envelope([]float64{1, 2}, 0) })
	mustPanic("negative t", func() { Envelope([]float64{1, 2}, -1) })
	mustPanic("prox len", func() { Prox([]float64{1, 2}, 1, make([]float64, 1)) })
}

func TestEvaluatorMatchesPackageFunctions(t *testing.T) {
	ev := NewEvaluator(16)
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(40) // exercises both insertion sort and sort.Float64s
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		tt := 0.1 + rng.Float64()
		if a, b := ev.Envelope(x, tt), Envelope(x, tt); a != b {
			t.Fatalf("evaluator envelope %g != %g", a, b)
		}
	}
}

func TestHPWL1D(t *testing.T) {
	if HPWL1D(nil) != 0 {
		t.Error("empty HPWL should be 0")
	}
	if got := HPWL1D([]float64{3, -1, 7, 2}); got != 8 {
		t.Errorf("HPWL1D = %g, want 8", got)
	}
}

// --- benchmarks (per-net kernel costs) ---

func benchmarkEnvelopeGrad(b *testing.B, degree int) {
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, degree)
	for i := range x {
		x[i] = rng.Float64() * 1000
	}
	g := make([]float64, degree)
	ev := NewEvaluator(degree)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EnvelopeGrad(x, 4.0, g)
	}
}

func BenchmarkEnvelopeGradDegree2(b *testing.B)  { benchmarkEnvelopeGrad(b, 2) }
func BenchmarkEnvelopeGradDegree4(b *testing.B)  { benchmarkEnvelopeGrad(b, 4) }
func BenchmarkEnvelopeGradDegree16(b *testing.B) { benchmarkEnvelopeGrad(b, 16) }
func BenchmarkEnvelopeGradDegree128(b *testing.B) {
	benchmarkEnvelopeGrad(b, 128)
}

// The proximal mapping of a convex function is firmly nonexpansive:
// ||prox(x) - prox(y)|| <= ||x - y||.
func TestProxNonexpansive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(10)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 50
			y[i] = rng.NormFloat64() * 50
		}
		tt := 0.05 + rng.Float64()*20
		px := make([]float64, n)
		py := make([]float64, n)
		Prox(x, tt, px)
		Prox(y, tt, py)
		var dxy, dpq float64
		for i := range x {
			d := x[i] - y[i]
			dxy += d * d
			e := px[i] - py[i]
			dpq += e * e
		}
		if dpq > dxy*(1+1e-9) {
			t.Fatalf("prox expansive: %g > %g", math.Sqrt(dpq), math.Sqrt(dxy))
		}
	}
}

// The envelope gradient is 1/t-Lipschitz:
// ||grad(x) - grad(y)|| <= ||x - y|| / t.
func TestGradientLipschitz(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(10)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 30
			y[i] = rng.NormFloat64() * 30
		}
		tt := 0.05 + rng.Float64()*10
		gx := make([]float64, n)
		gy := make([]float64, n)
		EnvelopeGrad(x, tt, gx)
		EnvelopeGrad(y, tt, gy)
		var dxy, dg float64
		for i := range x {
			d := x[i] - y[i]
			dxy += d * d
			e := gx[i] - gy[i]
			dg += e * e
		}
		if math.Sqrt(dg) > math.Sqrt(dxy)/tt*(1+1e-9) {
			t.Fatalf("gradient not 1/t-Lipschitz: %g > %g", math.Sqrt(dg), math.Sqrt(dxy)/tt)
		}
	}
}

// quick.Check form: envelope values are finite and non-negative for any
// real inputs and positive t.
func TestEnvelopeAlwaysFiniteNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)))
		}
		tt := math.Pow(10, -3+6*rng.Float64())
		v := Envelope(x, tt)
		return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
