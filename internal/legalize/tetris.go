package legalize

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/wirelength"
)

// Tetris is the classic greedy legalizer: cells are processed left to
// right, each taking the best packed position across nearby rows. Faster
// and cruder than Abacus; it serves as the reference-flow legalizer.
func Tetris(d *netlist.Design) (*Result, error) {
	if len(d.Rows) == 0 {
		return nil, fmt.Errorf("legalize: design %q has no rows", d.Name)
	}
	obstacles, err := legalizeMacros(d)
	if err != nil {
		return nil, err
	}
	segs, rows, err := buildSegments(d, obstacles, false)
	if err != nil {
		return nil, err
	}
	// Fill pointers per segment.
	fill := make([]float64, len(segs))
	for i := range segs {
		fill[i] = segs[i].xl
	}

	cells := []int{}
	for _, c := range d.MovableIndices() {
		if d.Cells[c].Kind == netlist.MovableMacro {
			continue
		}
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return d.X[cells[i]] < d.X[cells[j]] })

	origX := append([]float64(nil), d.X...)
	origY := append([]float64(nil), d.Y...)

	for _, c := range cells {
		w := d.Cells[c].W
		xWant, yWant := d.X[c], d.Y[c]
		best := math.Inf(1)
		bestSeg := -1
		bestX := 0.0
		base := nearestRowIndex(rows, yWant)
		tryRow := func(ri int) bool {
			if ri < 0 || ri >= len(rows) {
				return false
			}
			dy := math.Abs(rows[ri].y - yWant)
			if dy >= best {
				return false
			}
			for _, si := range rows[ri].segs {
				if segs[si].xh-fill[si] < w-1e-9 {
					continue
				}
				// Tetris packs strictly at the fill pointer; leaving a
				// gap would strand capacity (cells are processed in
				// ascending x, so nothing later reclaims it).
				x := fill[si]
				cost := math.Abs(x-xWant) + dy
				if cost < best {
					best = cost
					bestSeg = si
					bestX = x
				}
			}
			return true
		}
		tryRow(base)
		for off := 1; off < len(rows); off++ {
			up := tryRow(base + off)
			down := tryRow(base - off)
			if !up && !down {
				break
			}
		}
		if bestSeg < 0 {
			return nil, fmt.Errorf("legalize: tetris cannot place cell %d (w=%g)", c, w)
		}
		d.X[c] = bestX
		d.Y[c] = segs[bestSeg].y
		fill[bestSeg] = bestX + w
	}

	res := displacementStats(d, origX, origY)
	res.HPWL = wirelength.TotalHPWL(d)
	return res, nil
}
