package legalize

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// CheckLegal verifies that the design's movable cells form a legal
// placement: standard cells sit exactly on rows inside the region, nothing
// overlaps (movable-movable or movable-fixed). It returns the first
// violation found, or nil.
func CheckLegal(d *netlist.Design) error {
	const eps = 1e-6
	if len(d.Rows) == 0 {
		return fmt.Errorf("legalize: no rows to check against")
	}
	rowY := map[float64]netlist.Row{}
	rows := append([]netlist.Row(nil), d.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Y < rows[j].Y })
	for _, r := range rows {
		rowY[r.Y] = r
	}
	findRow := func(y float64) (netlist.Row, bool) {
		// Exact map hit first, then tolerance scan.
		if r, ok := rowY[y]; ok {
			return r, true
		}
		for _, r := range rows {
			if math.Abs(r.Y-y) <= eps {
				return r, true
			}
		}
		return netlist.Row{}, false
	}

	type placed struct {
		rect geom.Rect
		idx  int
	}
	var stdCells []placed
	var bigCells []placed // macros: checked all-pairs (few of them)

	for _, c := range d.MovableIndices() {
		rect := d.CellRect(c)
		if !d.Region.Expand(eps).ContainsRect(rect) {
			return fmt.Errorf("legalize: cell %d (%s) at %v outside region %v", c, d.Cells[c].Name, rect, d.Region)
		}
		if d.Cells[c].Kind == netlist.MovableMacro {
			bigCells = append(bigCells, placed{rect, c})
			continue
		}
		row, ok := findRow(d.Y[c])
		if !ok {
			return fmt.Errorf("legalize: cell %d (%s) y=%g not on any row", c, d.Cells[c].Name, d.Y[c])
		}
		if rect.XL < row.XL-eps || rect.XH > row.XH+eps {
			return fmt.Errorf("legalize: cell %d (%s) outside row span [%g,%g]", c, d.Cells[c].Name, row.XL, row.XH)
		}
		stdCells = append(stdCells, placed{rect, c})
	}

	// Std-cell overlap: group by row (YL) and sweep in x.
	byRow := map[float64][]placed{}
	for _, p := range stdCells {
		byRow[p.rect.YL] = append(byRow[p.rect.YL], p)
	}
	for _, cellsInRow := range byRow {
		sort.Slice(cellsInRow, func(i, j int) bool { return cellsInRow[i].rect.XL < cellsInRow[j].rect.XL })
		for i := 1; i < len(cellsInRow); i++ {
			prev, cur := cellsInRow[i-1], cellsInRow[i]
			if prev.rect.XH > cur.rect.XL+eps {
				return fmt.Errorf("legalize: cells %d and %d overlap in row y=%g (%v vs %v)",
					prev.idx, cur.idx, prev.rect.YL, prev.rect, cur.rect)
			}
		}
	}

	// Fixed obstacles.
	var obstacles []placed
	for i, c := range d.Cells {
		if c.Kind == netlist.Fixed && c.Area() > 0 {
			obstacles = append(obstacles, placed{d.CellRect(i), i})
		}
	}
	shrunk := func(r geom.Rect) geom.Rect { return r.Expand(-eps) }
	for _, ob := range obstacles {
		for _, p := range stdCells {
			if shrunk(p.rect).Overlaps(ob.rect) {
				return fmt.Errorf("legalize: cell %d overlaps fixed obstacle %d", p.idx, ob.idx)
			}
		}
	}
	// Macros against everything.
	for i, m := range bigCells {
		for j := i + 1; j < len(bigCells); j++ {
			if shrunk(m.rect).Overlaps(bigCells[j].rect) {
				return fmt.Errorf("legalize: macros %d and %d overlap", m.idx, bigCells[j].idx)
			}
		}
		for _, ob := range obstacles {
			if shrunk(m.rect).Overlaps(ob.rect) {
				return fmt.Errorf("legalize: macro %d overlaps fixed obstacle %d", m.idx, ob.idx)
			}
		}
		for _, p := range stdCells {
			if shrunk(m.rect).Overlaps(p.rect) {
				return fmt.Errorf("legalize: macro %d overlaps cell %d", m.idx, p.idx)
			}
		}
	}
	return nil
}
