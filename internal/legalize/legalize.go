// Package legalize snaps a global placement to legal standard-cell rows:
// overlap-free, row-aligned, inside the placement region, avoiding fixed
// obstacles. Two algorithms are provided:
//
//   - Abacus (Spindler et al., ISPD 2008): the dynamic-programming cluster
//     legalizer used by DREAMPlace, minimizing quadratic displacement per
//     row; this is the paper's legalization step.
//   - Tetris (Hill): the classic greedy row-packing reference.
//
// Movable macros are legalized first by a greedy displacement search and
// then treated as obstacles for the standard cells.
package legalize

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/wirelength"
)

// Options tunes the Abacus legalizer.
type Options struct {
	// MaxRowSearch bounds how many rows above/below the target row are
	// tried per cell (default 24).
	MaxRowSearch int
	// SiteAlign snaps final x coordinates to the row's site grid.
	SiteAlign bool
}

// Result reports displacement statistics and post-legalization wirelength.
type Result struct {
	// TotalDisp, AvgDisp, MaxDisp are Euclidean cell displacements.
	TotalDisp, AvgDisp, MaxDisp float64
	// HPWL is the exact wirelength after legalization (LGWL in the
	// paper's tables).
	HPWL float64
}

// cluster is an Abacus cell cluster within one row segment.
type cluster struct {
	x, e, q, w float64
	cells      []int32
	widths     []float64
}

// segment is a free interval of one row between obstacles.
type segment struct {
	row      int
	y        float64
	xl, xh   float64
	rowXL    float64 // row origin: the site grid is anchored here
	siteW    float64
	used     float64
	clusters []cluster
}

func (s *segment) free() float64 { return (s.xh - s.xl) - s.used }

// Abacus legalizes the design in place and returns displacement statistics.
// Standard cells must have exactly the row height; movable macros are
// legalized greedily first.
func Abacus(d *netlist.Design, opt Options) (*Result, error) {
	if opt.MaxRowSearch <= 0 {
		opt.MaxRowSearch = 24
	}
	if len(d.Rows) == 0 {
		return nil, fmt.Errorf("legalize: design %q has no rows", d.Name)
	}
	obstacles, err := legalizeMacros(d)
	if err != nil {
		return nil, err
	}

	segs, rowsByY, err := buildSegments(d, obstacles, opt.SiteAlign)
	if err != nil {
		return nil, err
	}

	// Cells to legalize: movable standard cells, sorted by x (Abacus order).
	cells := []int{}
	for _, c := range d.MovableIndices() {
		if d.Cells[c].Kind == netlist.MovableMacro {
			continue
		}
		if math.Abs(d.Cells[c].H-d.Rows[0].Height) > 1e-9 {
			return nil, fmt.Errorf("legalize: cell %d height %g does not match row height %g (multi-row cells unsupported)", c, d.Cells[c].H, d.Rows[0].Height)
		}
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return d.X[cells[i]] < d.X[cells[j]] })

	origX := append([]float64(nil), d.X...)
	origY := append([]float64(nil), d.Y...)

	for _, c := range cells {
		w := d.Cells[c].W
		xWant := d.X[c]
		yWant := d.Y[c]
		bestCost := math.Inf(1)
		var bestSeg *segment
		var bestX float64

		// Rows ordered by vertical distance from the wanted position.
		tryRow := func(ri int) bool {
			if ri < 0 || ri >= len(rowsByY) {
				return false
			}
			dy := rowsByY[ri].y - yWant
			if dy*dy >= bestCost {
				return false // even zero horizontal cost cannot win
			}
			for _, si := range rowsByY[ri].segs {
				seg := &segs[si]
				if seg.free() < w-1e-9 {
					continue
				}
				x, ok := trialInsert(seg, xWant, w)
				if !ok {
					continue
				}
				dx := x - xWant
				cost := dx*dx + dy*dy
				if cost < bestCost {
					bestCost = cost
					bestSeg = seg
					bestX = x
				}
			}
			return true
		}

		base := nearestRowIndex(rowsByY, yWant)
		tryRow(base)
		for off := 1; off <= opt.MaxRowSearch; off++ {
			up := tryRow(base + off)
			down := tryRow(base - off)
			if !up && !down {
				break
			}
		}
		if bestSeg == nil {
			// Desperate fallback: search every row.
			for ri := range rowsByY {
				tryRow(ri)
			}
		}
		if bestSeg == nil {
			return nil, fmt.Errorf("legalize: no row segment fits cell %d (w=%g)", c, w)
		}
		commitInsert(bestSeg, int32(c), xWant, w)
		_ = bestX
	}

	// Write final positions from the clusters.
	for i := range segs {
		seg := &segs[i]
		for _, cl := range seg.clusters {
			x := cl.x
			for k, cell := range cl.cells {
				d.X[cell] = x
				d.Y[cell] = seg.y
				x += cl.widths[k]
			}
		}
		if opt.SiteAlign {
			snapSegment(d, seg)
		}
	}

	res := displacementStats(d, origX, origY)
	res.HPWL = wirelength.TotalHPWL(d)
	return res, nil
}

// trialInsert computes where a cell would land if appended to the segment,
// without mutating it. Returns the final x of the cell and whether it fits.
func trialInsert(seg *segment, xWant, w float64) (float64, bool) {
	if xWant < seg.xl {
		xWant = seg.xl
	}
	if xWant > seg.xh-w {
		xWant = seg.xh - w
	}
	i := len(seg.clusters) - 1
	var e, q, wi, off float64
	if i >= 0 && seg.clusters[i].x+seg.clusters[i].w > xWant {
		c := &seg.clusters[i]
		e = c.e + 1
		q = c.q + (xWant - c.w)
		wi = c.w + w
		off = c.w
		i--
	} else {
		e, q, wi, off = 1, xWant, w, 0
	}
	if wi > seg.xh-seg.xl+1e-9 {
		return 0, false
	}
	x := geom.Clamp(q/e, seg.xl, seg.xh-wi)
	for i >= 0 && seg.clusters[i].x+seg.clusters[i].w > x {
		p := &seg.clusters[i]
		off += p.w
		q = p.q + q - e*p.w
		e = p.e + e
		wi = p.w + wi
		if wi > seg.xh-seg.xl+1e-9 {
			return 0, false
		}
		x = geom.Clamp(q/e, seg.xl, seg.xh-wi)
		i--
	}
	return x + off, true
}

// commitInsert performs the Abacus insertion for real.
func commitInsert(seg *segment, cell int32, xWant, w float64) {
	if xWant < seg.xl {
		xWant = seg.xl
	}
	if xWant > seg.xh-w {
		xWant = seg.xh - w
	}
	n := len(seg.clusters)
	if n > 0 && seg.clusters[n-1].x+seg.clusters[n-1].w > xWant {
		c := &seg.clusters[n-1]
		c.e++
		c.q += xWant - c.w
		c.w += w
		c.cells = append(c.cells, cell)
		c.widths = append(c.widths, w)
	} else {
		seg.clusters = append(seg.clusters, cluster{
			x: xWant, e: 1, q: xWant, w: w,
			cells:  []int32{cell},
			widths: []float64{w},
		})
	}
	// Collapse.
	for {
		n = len(seg.clusters)
		c := &seg.clusters[n-1]
		c.x = geom.Clamp(c.q/c.e, seg.xl, seg.xh-c.w)
		if n == 1 {
			break
		}
		p := &seg.clusters[n-2]
		if p.x+p.w <= c.x {
			break
		}
		// Merge c into p.
		p.q += c.q - c.e*p.w
		p.e += c.e
		p.w += c.w
		p.cells = append(p.cells, c.cells...)
		p.widths = append(p.widths, c.widths...)
		seg.clusters = seg.clusters[:n-1]
	}
	seg.used += w
}

// snapSegment aligns cell x coordinates to the site grid, resolving any
// overlap introduced by rounding with a left-to-right then right-to-left
// fixup.
func snapSegment(d *netlist.Design, seg *segment) {
	if seg.siteW <= 0 {
		return
	}
	cells := []int32{}
	for _, cl := range seg.clusters {
		cells = append(cells, cl.cells...)
	}
	sort.Slice(cells, func(i, j int) bool { return d.X[cells[i]] < d.X[cells[j]] })
	snapDown := func(x float64) float64 {
		return seg.rowXL + math.Floor((x-seg.rowXL)/seg.siteW)*seg.siteW
	}
	snapUp := func(x float64) float64 {
		return seg.rowXL + math.Ceil((x-seg.rowXL-1e-9)/seg.siteW)*seg.siteW
	}
	prevEnd := snapUp(seg.xl)
	for _, c := range cells {
		x := math.Max(snapDown(d.X[c]), snapUp(prevEnd))
		d.X[c] = x
		prevEnd = x + d.Cells[c].W
	}
	// If the row overflowed to the right, shift cells back left on the
	// site grid (snapDown keeps both alignment and the right boundary).
	if prevEnd > seg.xh {
		nextStart := seg.xh
		for i := len(cells) - 1; i >= 0; i-- {
			c := cells[i]
			if d.X[c]+d.Cells[c].W <= nextStart {
				break
			}
			x := snapDown(nextStart - d.Cells[c].W)
			if x < seg.xl {
				// Not enough site-aligned room; leave the remainder
				// continuous rather than push cells out of the segment.
				break
			}
			d.X[c] = x
			nextStart = x
		}
	}
}

// rowRef groups the segments of one row for the row search.
type rowRef struct {
	y    float64
	segs []int
}

// buildSegments splits every row into free segments around the obstacles.
// With siteAlign, segment bounds are shrunk inward to the row's site grid so
// that site-snapped packing can never overflow a segment (this requires cell
// widths that are whole multiples of the site width, which contest designs
// satisfy).
func buildSegments(d *netlist.Design, obstacles []geom.Rect, siteAlign bool) ([]segment, []rowRef, error) {
	var segs []segment
	rows := append([]netlist.Row(nil), d.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Y < rows[j].Y })
	refs := make([]rowRef, 0, len(rows))
	for ri, row := range rows {
		// Obstacles overlapping this row, as x intervals.
		type iv struct{ lo, hi float64 }
		var blocked []iv
		rowRect := geom.Rect{XL: row.XL, YL: row.Y, XH: row.XH, YH: row.Y + row.Height}
		for _, ob := range obstacles {
			if ob.Overlaps(rowRect) {
				blocked = append(blocked, iv{ob.XL, ob.XH})
			}
		}
		sort.Slice(blocked, func(i, j int) bool { return blocked[i].lo < blocked[j].lo })
		ref := rowRef{y: row.Y}
		cursor := row.XL
		emit := func(xl, xh float64) {
			if siteAlign && row.SiteW > 0 {
				// Shrink inward onto the site grid anchored at row.XL.
				xl = row.XL + math.Ceil((xl-row.XL-1e-9)/row.SiteW)*row.SiteW
				xh = row.XL + math.Floor((xh-row.XL+1e-9)/row.SiteW)*row.SiteW
			}
			if xh-xl <= 1e-9 {
				return
			}
			ref.segs = append(ref.segs, len(segs))
			segs = append(segs, segment{row: ri, y: row.Y, xl: xl, xh: xh, rowXL: row.XL, siteW: row.SiteW})
		}
		for _, b := range blocked {
			if b.lo > cursor {
				emit(cursor, math.Min(b.lo, row.XH))
			}
			if b.hi > cursor {
				cursor = b.hi
			}
			if cursor >= row.XH {
				break
			}
		}
		if cursor < row.XH {
			emit(cursor, row.XH)
		}
		refs = append(refs, ref)
	}
	return segs, refs, nil
}

// nearestRowIndex locates the row whose bottom is closest to y.
func nearestRowIndex(rows []rowRef, y float64) int {
	lo, hi := 0, len(rows)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid].y < y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && math.Abs(rows[lo-1].y-y) < math.Abs(rows[lo].y-y) {
		return lo - 1
	}
	return lo
}

// displacementStats computes how far cells moved from (origX, origY).
func displacementStats(d *netlist.Design, origX, origY []float64) *Result {
	res := &Result{}
	n := 0
	for _, c := range d.MovableIndices() {
		dx := d.X[c] - origX[c]
		dy := d.Y[c] - origY[c]
		disp := math.Hypot(dx, dy)
		res.TotalDisp += disp
		if disp > res.MaxDisp {
			res.MaxDisp = disp
		}
		n++
	}
	if n > 0 {
		res.AvgDisp = res.TotalDisp / float64(n)
	}
	return res
}
