package legalize

import (
	"math"
	"testing"

	"repro/internal/netlist"
	"repro/internal/placer"
	"repro/internal/synth"
	"repro/internal/wirelength"
)

// placedDesign returns a small design after global placement (the realistic
// legalizer input: spread but overlapping).
func placedDesign(t testing.TB, cells, macros int) *netlist.Design {
	t.Helper()
	spec := synth.Spec{
		Name:           "lg-test",
		NumMovable:     cells,
		NumMacros:      macros,
		NumPads:        8,
		NumFixedBlocks: 2,
		NumNets:        cells + cells/8,
		AvgDegree:      3.8,
		Utilization:    0.65,
		TargetDensity:  1.0,
		Seed:           5,
	}
	d, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := wirelength.ByName("WA")
	cfg := placer.DefaultConfig(m)
	cfg.MaxIters = 300
	cfg.StopOverflow = 0.15
	if _, err := placer.Place(d, cfg); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAbacusProducesLegalPlacement(t *testing.T) {
	d := placedDesign(t, 500, 0)
	res, err := Abacus(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLegal(d); err != nil {
		t.Fatalf("Abacus output illegal: %v", err)
	}
	if res.MaxDisp <= 0 || res.AvgDisp <= 0 {
		t.Errorf("suspicious displacement stats: %+v", res)
	}
	if res.HPWL <= 0 {
		t.Errorf("HPWL = %g", res.HPWL)
	}
}

func TestAbacusWithMacros(t *testing.T) {
	d := placedDesign(t, 400, 3)
	if _, err := Abacus(d, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := CheckLegal(d); err != nil {
		t.Fatalf("macro legalization illegal: %v", err)
	}
}

func TestAbacusSiteAlign(t *testing.T) {
	d := placedDesign(t, 300, 0)
	if _, err := Abacus(d, Options{SiteAlign: true}); err != nil {
		t.Fatal(err)
	}
	if err := CheckLegal(d); err != nil {
		t.Fatalf("site-aligned output illegal: %v", err)
	}
	for _, c := range d.MovableIndices() {
		if d.Cells[c].Kind == netlist.MovableMacro {
			continue
		}
		// Site width 1 in synth designs: x must be integral w.r.t. row origin.
		frac := d.X[c] - math.Floor(d.X[c])
		if frac > 1e-6 && frac < 1-1e-6 {
			t.Fatalf("cell %d x=%g not site aligned", c, d.X[c])
		}
	}
}

func TestTetrisProducesLegalPlacement(t *testing.T) {
	d := placedDesign(t, 500, 0)
	res, err := Tetris(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLegal(d); err != nil {
		t.Fatalf("Tetris output illegal: %v", err)
	}
	if res.HPWL <= 0 {
		t.Error("no HPWL reported")
	}
}

func TestAbacusBeatsTetrisOnDisplacement(t *testing.T) {
	d1 := placedDesign(t, 600, 0)
	d2 := d1.Clone()
	ra, err := Abacus(d1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Tetris(d2)
	if err != nil {
		t.Fatal(err)
	}
	// Abacus minimizes movement; it must not be drastically worse than the
	// greedy packer, and is typically better.
	if ra.AvgDisp > rt.AvgDisp*1.2 {
		t.Errorf("Abacus avg disp %g much worse than Tetris %g", ra.AvgDisp, rt.AvgDisp)
	}
}

func TestLegalizationPreservesWirelengthQuality(t *testing.T) {
	d := placedDesign(t, 500, 0)
	gpWL := wirelength.TotalHPWL(d)
	res, err := Abacus(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// LGWL should stay within a modest factor of the GP wirelength.
	if res.HPWL > 1.5*gpWL {
		t.Errorf("legalization destroyed quality: %g -> %g", gpWL, res.HPWL)
	}
}

func TestCheckLegalCatchesViolations(t *testing.T) {
	d := placedDesign(t, 200, 0)
	if _, err := Abacus(d, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := CheckLegal(d); err != nil {
		t.Fatal(err)
	}
	mov := d.MovableIndices()

	// Off-row cell.
	d1 := d.Clone()
	d1.Y[mov[0]] += 0.5
	if CheckLegal(d1) == nil {
		t.Error("off-row cell not caught")
	}

	// Overlapping cells: move one cell onto another in the same row.
	d2 := d.Clone()
	var a, b int = -1, -1
	for _, c := range mov {
		if a < 0 {
			a = c
			continue
		}
		if d2.Y[c] == d2.Y[a] && c != a {
			b = c
			break
		}
	}
	if b >= 0 {
		d2.X[b] = d2.X[a]
		if CheckLegal(d2) == nil {
			t.Error("overlap not caught")
		}
	}

	// Outside region.
	d3 := d.Clone()
	d3.X[mov[0]] = d3.Region.XH + 100
	if CheckLegal(d3) == nil {
		t.Error("out-of-region cell not caught")
	}
}

func TestAbacusRequiresRows(t *testing.T) {
	d := placedDesign(t, 50, 0)
	d.Rows = nil
	if _, err := Abacus(d, Options{}); err == nil {
		t.Error("Abacus accepted rowless design")
	}
	if _, err := Tetris(d); err == nil {
		t.Error("Tetris accepted rowless design")
	}
}

func TestAbacusDeterministic(t *testing.T) {
	d1 := placedDesign(t, 300, 0)
	d2 := d1.Clone()
	if _, err := Abacus(d1, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Abacus(d2, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range d1.X {
		if d1.X[i] != d2.X[i] || d1.Y[i] != d2.Y[i] {
			t.Fatalf("nondeterministic legalization at cell %d", i)
		}
	}
}

func TestTrialInsertMatchesCommit(t *testing.T) {
	seg := &segment{y: 0, xl: 0, xh: 100, siteW: 1}
	cells := []struct{ x, w float64 }{
		{10, 4}, {12, 3}, {11, 2}, {50, 5}, {49, 5}, {0, 3}, {90, 8}, {95, 8},
	}
	for i, c := range cells {
		want, ok := trialInsert(seg, c.x, c.w)
		if !ok {
			t.Fatalf("cell %d does not fit", i)
		}
		commitInsert(seg, int32(i), c.x, c.w)
		// Locate cell i's committed position.
		got := math.NaN()
		for _, cl := range seg.clusters {
			x := cl.x
			for k, id := range cl.cells {
				if id == int32(i) {
					got = x
				}
				x += cl.widths[k]
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("cell %d: trial %g != commit %g", i, want, got)
		}
	}
	// Clusters must be non-overlapping and inside the segment.
	prevEnd := seg.xl
	for _, cl := range seg.clusters {
		if cl.x < prevEnd-1e-9 {
			t.Fatalf("cluster at %g overlaps previous end %g", cl.x, prevEnd)
		}
		prevEnd = cl.x + cl.w
	}
	if prevEnd > seg.xh+1e-9 {
		t.Fatalf("clusters exceed segment: %g > %g", prevEnd, seg.xh)
	}
}

func TestSegmentsRespectObstacles(t *testing.T) {
	d := placedDesign(t, 300, 2)
	if _, err := Abacus(d, Options{}); err != nil {
		t.Fatal(err)
	}
	// Already covered by CheckLegal, but assert macros truly became
	// obstacles: no std cell inside any macro rect.
	for _, c := range d.MovableIndices() {
		if d.Cells[c].Kind != netlist.MovableMacro {
			continue
		}
		mr := d.CellRect(c)
		for _, s := range d.MovableIndices() {
			if s == c || d.Cells[s].Kind == netlist.MovableMacro {
				continue
			}
			if mr.Expand(-1e-6).Overlaps(d.CellRect(s)) {
				t.Fatalf("cell %d inside macro %d", s, c)
			}
		}
	}
}

func BenchmarkAbacus(b *testing.B) {
	base := placedDesign(b, 800, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		if _, err := Abacus(d, Options{SiteAlign: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTetris(b *testing.B) {
	base := placedDesign(b, 800, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		if _, err := Tetris(d); err != nil {
			b.Fatal(err)
		}
	}
}
