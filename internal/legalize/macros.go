package legalize

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// legalizeMacros places movable macros at overlap-free positions near their
// global-placement locations (greedy spiral search, largest macro first) and
// returns the full obstacle list (fixed cells + legalized macros) for the
// standard-cell legalizer.
func legalizeMacros(d *netlist.Design) ([]geom.Rect, error) {
	var obstacles []geom.Rect
	for i, c := range d.Cells {
		if c.Kind == netlist.Fixed && c.Area() > 0 {
			obstacles = append(obstacles, d.CellRect(i))
		}
	}
	var macros []int
	for i, c := range d.Cells {
		if c.Kind == netlist.MovableMacro {
			macros = append(macros, i)
		}
	}
	sort.Slice(macros, func(a, b int) bool {
		return d.Cells[macros[a]].Area() > d.Cells[macros[b]].Area()
	})
	for _, m := range macros {
		pos, ok := findMacroSpot(d, m, obstacles)
		if !ok {
			return nil, fmt.Errorf("legalize: cannot find legal spot for macro %s", d.Cells[m].Name)
		}
		d.X[m], d.Y[m] = pos.X, pos.Y
		obstacles = append(obstacles, d.CellRect(m))
	}
	return obstacles, nil
}

// findMacroSpot searches a spiral of candidate offsets around the macro's
// wanted position for an overlap-free, in-region placement. The step size
// follows the row height so macros stay roughly row-aligned.
func findMacroSpot(d *netlist.Design, m int, obstacles []geom.Rect) (geom.Point, bool) {
	c := d.Cells[m]
	r := d.Region
	step := 1.0
	if len(d.Rows) > 0 {
		step = d.Rows[0].Height
	}
	clampPos := func(x, y float64) (float64, float64) {
		return geom.Clamp(x, r.XL, r.XH-c.W), geom.Clamp(y, r.YL, r.YH-c.H)
	}
	ok := func(x, y float64) bool {
		rect := geom.Rect{XL: x, YL: y, XH: x + c.W, YH: y + c.H}
		if !r.ContainsRect(rect) {
			return false
		}
		for _, ob := range obstacles {
			if rect.Overlaps(ob) {
				return false
			}
		}
		return true
	}
	x0, y0 := clampPos(d.X[m], d.Y[m])
	if ok(x0, y0) {
		return geom.Point{X: x0, Y: y0}, true
	}
	// Spiral outward in rings of radius k*step.
	maxRing := int(math.Ceil(math.Max(r.W(), r.H()) / step))
	for k := 1; k <= maxRing; k++ {
		rad := float64(k) * step
		// Sample the ring perimeter at step resolution.
		n := 8 * k
		for s := 0; s < n; s++ {
			ang := 2 * math.Pi * float64(s) / float64(n)
			x, y := clampPos(x0+rad*math.Cos(ang), y0+rad*math.Sin(ang))
			if ok(x, y) {
				return geom.Point{X: x, Y: y}, true
			}
		}
	}
	return geom.Point{}, false
}
