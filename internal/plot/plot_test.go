package plot

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/synth"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Test <Chart>",
		XLabel: "x",
		YLabel: "y",
		Series: []metrics.Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", ">a</text>", ">b</text>", "Test &lt;Chart&gt;"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestRenderLogAxis(t *testing.T) {
	c := sampleChart()
	c.LogX = true
	c.Series[0].X = []float64{0.01, 1, 100}
	c.Series[1].X = []float64{0.01, 1, 100}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Log axis rejects non-positive values.
	c.Series[0].X[0] = 0
	if err := c.Render(&buf); err == nil {
		t.Error("log axis accepted zero")
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	c := &Chart{Title: "empty"}
	if err := c.Render(&buf); err == nil {
		t.Error("empty chart accepted")
	}
	c = sampleChart()
	c.Series[0].Y = c.Series[0].Y[:1]
	if err := c.Render(&buf); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate (flat) data must not divide by zero.
	c := &Chart{
		Title: "flat",
		Series: []metrics.Series{
			{Name: "c", X: []float64{1, 1}, Y: []float64{2, 2}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("SVG contains NaN coordinates")
	}
}

func TestRenderCoordinatesInsideViewBox(t *testing.T) {
	var buf bytes.Buffer
	c := sampleChart()
	c.Width, c.Height = 400, 300
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Crude but effective: every polyline coordinate should be a small
	// positive number (no wild out-of-range projections).
	start := strings.Index(out, "<polyline points=\"")
	end := strings.Index(out[start+18:], "\"")
	coords := out[start+18 : start+18+end]
	for _, pair := range strings.Fields(coords) {
		parts := strings.Split(pair, ",")
		if len(parts) != 2 {
			t.Fatalf("bad coordinate %q", pair)
		}
		x, err1 := strconv.ParseFloat(parts[0], 64)
		y, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad coordinate %q", pair)
		}
		if x < 0 || x > 400 || y < 0 || y > 300 {
			t.Fatalf("coordinate %q outside 400x300 viewbox", pair)
		}
	}
}

func TestPlacementSVG(t *testing.T) {
	d, err := synth.Generate(synth.Spec{
		Name: "viz", NumMovable: 50, NumMacros: 1, NumPads: 4, NumFixedBlocks: 1,
		NumNets: 55, AvgDegree: 3, Utilization: 0.6, TargetDensity: 1, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PlacementSVG(&buf, d, 400); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 50 std cells + 1 macro + 1 fixed block as rects, 4 terminals as circles.
	if got := strings.Count(out, "<rect"); got < 52 {
		t.Errorf("only %d rects", got)
	}
	if got := strings.Count(out, "<circle"); got != 4 {
		t.Errorf("%d circles, want 4", got)
	}
	for _, color := range []string{"#3b76c4", "#e88a2d", "#999999"} {
		if !strings.Contains(out, color) {
			t.Errorf("missing %s cells", color)
		}
	}
}

func TestHeatmapSVG(t *testing.T) {
	var buf bytes.Buffer
	vals := []float64{0, 1, 2, 3, 4, 5}
	if err := HeatmapSVG(&buf, vals, 3, 2, "demo & test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "<rect"); got != 6 {
		t.Errorf("%d cells, want 6", got)
	}
	if !strings.Contains(out, "demo &amp; test") {
		t.Error("title not escaped")
	}
	// Constant map must not divide by zero.
	if err := HeatmapSVG(&buf, []float64{1, 1}, 2, 1, "flat"); err != nil {
		t.Fatal(err)
	}
	if err := HeatmapSVG(&buf, vals, 2, 2, "bad"); err == nil {
		t.Error("size mismatch accepted")
	}
}
