package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/netlist"
)

// PlacementSVG renders the design's current placement: standard cells in
// blue, movable macros in orange, fixed obstacles in gray, terminals as
// black dots. maxPx bounds the longer image side (default 900).
func PlacementSVG(w io.Writer, d *netlist.Design, maxPx int) error {
	if d.Region.Empty() {
		return fmt.Errorf("plot: design has an empty region")
	}
	if maxPx <= 0 {
		maxPx = 900
	}
	scale := float64(maxPx) / math.Max(d.Region.W(), d.Region.H())
	imgW := int(d.Region.W()*scale) + 2
	imgH := int(d.Region.H()*scale) + 2
	// SVG y grows downward; placement y grows upward.
	px := func(x float64) float64 { return (x - d.Region.XL) * scale }
	py := func(y float64) float64 { return float64(imgH) - (y-d.Region.YL)*scale }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		imgW, imgH, imgW, imgH)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#333"/>`+"\n",
		px(d.Region.XL), py(d.Region.YH), d.Region.W()*scale, d.Region.H()*scale)

	emit := func(i int, fill, stroke string, opacity float64) {
		r := d.CellRect(i)
		fmt.Fprintf(&sb, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f" stroke="%s" stroke-width="0.3"/>`+"\n",
			px(r.XL), py(r.YH), r.W()*scale, r.H()*scale, fill, opacity, stroke)
	}
	// Draw fixed first so movables are visible on top.
	for i, c := range d.Cells {
		switch {
		case c.Kind == netlist.Fixed && c.Area() > 0:
			emit(i, "#999999", "#666666", 0.9)
		case c.Kind == netlist.Terminal:
			fmt.Fprintf(&sb, `<circle cx="%.2f" cy="%.2f" r="2" fill="black"/>`+"\n",
				px(d.X[i]), py(d.Y[i]))
		}
	}
	for i, c := range d.Cells {
		switch c.Kind {
		case netlist.Movable:
			emit(i, "#3b76c4", "#1f4e8c", 0.6)
		case netlist.MovableMacro:
			emit(i, "#e88a2d", "#a85e12", 0.8)
		}
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// HeatmapSVG renders a row-major nx-by-ny grid of values as a heatmap
// (white = min, dark red = max). Used for density and RUDY congestion maps.
func HeatmapSVG(w io.Writer, values []float64, nx, ny int, title string) error {
	if nx <= 0 || ny <= 0 || len(values) != nx*ny {
		return fmt.Errorf("plot: heatmap grid %dx%d does not match %d values", nx, ny, len(values))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	const cell = 8
	imgW := nx * cell
	imgH := ny*cell + 24
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		imgW, imgH, imgW, imgH)
	fmt.Fprintf(&sb, `<text x="4" y="14" font-family="sans-serif" font-size="12">%s (min %.3g, max %.3g)</text>`+"\n",
		escape(title), lo, hi)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			t := (values[iy*nx+ix] - lo) / (hi - lo)
			// White -> yellow -> red ramp.
			r, g, b := 255, int(255*(1-t*t)), int(255*(1-t))
			// Grid row 0 is the bottom of the region: flip vertically.
			y := 24 + (ny-1-iy)*cell
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)"/>`+"\n",
				ix*cell, y, cell, cell, r, g, b)
		}
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
