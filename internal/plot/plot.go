// Package plot renders simple line charts as standalone SVG documents using
// only the standard library. The experiment harness uses it to produce
// graphical versions of the paper's figures (Fig. 1(a), Fig. 1(b), Fig. 3)
// next to their plain-text data blocks.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/metrics"
)

// Chart describes one line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX/LogY plot the axis on a log10 scale (points must be > 0).
	LogX, LogY bool
	// Width, Height are the SVG pixel dimensions (defaults 720x480).
	Width, Height int
	Series        []metrics.Series
}

// palette holds distinguishable line colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf",
}

const (
	marginL = 70.0
	marginR = 20.0
	marginT = 40.0
	marginB = 55.0
)

// Render writes the chart as an SVG document.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	if c.Width <= 0 {
		c.Width = 720
	}
	if c.Height <= 0 {
		c.Height = 480
	}
	tx := func(v float64) (float64, error) { return v, nil }
	ty := tx
	if c.LogX {
		tx = logT("x")
	}
	if c.LogY {
		ty = logT("y")
	}

	// Data bounds in (possibly transformed) coordinates.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has mismatched lengths %d/%d", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x, err := tx(s.X[i])
			if err != nil {
				return err
			}
			y, err := ty(s.Y[i])
			if err != nil {
				return err
			}
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom.
	padY := (maxY - minY) * 0.05
	minY -= padY
	maxY += padY

	plotW := float64(c.Width) - marginL - marginR
	plotH := float64(c.Height) - marginT - marginB
	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (y-minY)/(maxY-minY)*plotH }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.Width, c.Height, c.Width, c.Height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Title and axis labels.
	fmt.Fprintf(&sb, `<text x="%g" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
		float64(c.Width)/2, escape(c.Title))
	fmt.Fprintf(&sb, `<text x="%g" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, c.Height-10, escape(c.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(c.YLabel))

	// Frame.
	fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#444"/>`+"\n",
		marginL, marginT, plotW, plotH)

	// Ticks: 5 per axis with grid lines.
	for i := 0; i <= 5; i++ {
		fx := minX + (maxX-minX)*float64(i)/5
		fy := minY + (maxY-minY)*float64(i)/5
		X := px(fx)
		Y := py(fy)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", X, marginT, X, marginT+plotH)
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", marginL, Y, marginL+plotW, Y)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			X, marginT+plotH+16, tickLabel(fx, c.LogX))
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, Y+4, tickLabel(fy, c.LogY))
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			x, _ := tx(s.X[i])
			y, _ := ty(s.Y[i])
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(x), py(y)))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		// Legend entry.
		ly := marginT + 14 + float64(si)*16
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+8, ly, marginL+30, ly, color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginL+36, ly+4, escape(s.Name))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// logT returns a log10 transform that rejects non-positive values.
func logT(axis string) func(float64) (float64, error) {
	return func(v float64) (float64, error) {
		if v <= 0 {
			return 0, fmt.Errorf("plot: log %s axis requires positive values, got %g", axis, v)
		}
		return math.Log10(v), nil
	}
}

// tickLabel formats a tick value, undoing the log transform for display.
func tickLabel(v float64, logScale bool) string {
	if logScale {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
