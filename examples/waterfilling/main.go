// Waterfilling demonstrates the paper's core algorithm in isolation: the
// proximal mapping of the per-net HPWL solved by the water-filling sweep,
// the Moreau envelope value, and its gradient (Algorithms 1-2, Theorem 1,
// Corollary 1), compared against the WA model on the same net.
//
//	go run ./examples/waterfilling
package main

import (
	"fmt"

	"repro/internal/moreau"
	"repro/internal/wirelength"
)

func main() {
	// A 5-pin net; true HPWL span = 9.
	x := []float64{1, 3, 3.5, 8, 10}
	fmt.Printf("pin coordinates: %v (HPWL span %g)\n\n", x, moreau.HPWL1D(x))

	for _, t := range []float64{0.5, 2, 8, 40} {
		grad := make([]float64, len(x))
		prox := make([]float64, len(x))
		r := moreau.EnvelopeGrad(x, t, grad)
		moreau.Prox(x, t, prox)
		fmt.Printf("t = %-4g  envelope = %-8.4f  model(W^t+t) = %-8.4f\n",
			t, r.Value, r.Value+t)
		if r.Degenerate {
			fmt.Printf("          degenerate: prox collapsed to the mean %.4f\n", r.Tau1)
		} else {
			fmt.Printf("          water levels tau1 = %.4f, tau2 = %.4f\n", r.Tau1, r.Tau2)
		}
		fmt.Printf("          prox = %.4v\n", prox)
		fmt.Printf("          grad = %.4v  (sums to %g)\n\n", grad, sum(grad))
	}

	// Gradient comparison with WA at matched smoothing.
	fmt.Println("gradient comparison at smoothing parameter 2:")
	gME := make([]float64, len(x))
	gWA := make([]float64, len(x))
	wirelength.NetMoreau(x, 2, gME)
	wirelength.NetWA(x, 2, gWA)
	fmt.Printf("  ME: %.4v\n  WA: %.4v\n", gME, gWA)
	fmt.Println("\nBoth sum to zero (Corollaries 2-3); ME gradients are exactly")
	fmt.Println("zero for pins strictly between the water levels, so interior")
	fmt.Println("pins feel no spurious pull.")
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
