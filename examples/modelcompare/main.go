// Modelcompare runs all four wirelength models (BiG_CHKS, LSE, WA, and the
// paper's Moreau envelope) through the identical flow on one design and
// prints a miniature version of the paper's comparison tables, plus the
// Section II-D numerical-stability study.
//
//	go run ./examples/modelcompare
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/wirelength"
)

func main() {
	design, err := synth.Generate(synth.Spec{
		Name:          "compare",
		NumMovable:    3000,
		NumMacros:     4, // macros are where the paper's model shines
		NumPads:       16,
		NumNets:       3200,
		AvgDegree:     3.9,
		Utilization:   0.7,
		TargetDensity: 1.0,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	tbl := metrics.NewTable("Model comparison (one 3k-cell design with movable macros)",
		wirelength.AllModelNames(), "ME")
	for _, model := range wirelength.AllModelNames() {
		res, err := core.RunFlow(design.Clone(), core.DefaultFlowConfig(model))
		if err != nil {
			log.Fatal(err)
		}
		tbl.Set(design.Name, model, metrics.Cell{
			LGWL: res.LGWL, DPWL: res.DPWL, RT: res.TotalSeconds,
		})
		fmt.Printf("%-9s GPWL=%-10.4g LGWL=%-10.4g DPWL=%-10.4g RT=%.2fs\n",
			model, res.GPWL, res.LGWL, res.DPWL, res.TotalSeconds)
	}
	fmt.Println()
	fmt.Print(tbl.Render())

	fmt.Println()
	experiments.StabilityStudy(os.Stdout)
}
