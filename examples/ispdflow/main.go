// Ispdflow reproduces one row of the paper's evaluation end to end: it
// generates the newblue1-like synthetic benchmark (the macro-heavy design
// where the paper reports its largest 5.4% gain), runs WA and the Moreau
// model through the identical flow, prints the Fig. 3-style HPWL-vs-overflow
// trajectory of both, and reports the final DPWL gap.
//
//	go run ./examples/ispdflow [-scale 0.005]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/placer"
	"repro/internal/synth"
)

func main() {
	scale := flag.Float64("scale", 0.005, "fraction of the real newblue1 size")
	flag.Parse()

	spec := synth.SpecFromContest(synth.ISPD2006[1], *scale) // newblue1
	design, err := synth.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	s := design.ComputeStats()
	fmt.Printf("newblue1-like @ %.3g scale: %d movable (%d macros), %d nets, %d pins\n\n",
		*scale, s.NumMovable, s.NumMacros, s.NumNets, s.NumPins)

	results := map[string]*core.FlowResult{}
	var series []metrics.Series
	for _, model := range []string{"WA", "ME"} {
		cfg := core.DefaultFlowConfig(model)
		cfg.GP = placer.Config{RecordEvery: 10}
		res, err := core.RunFlow(design.Clone(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		results[model] = res
		sr := metrics.Series{Name: model}
		for _, p := range res.Trajectory {
			sr.X = append(sr.X, p.Overflow)
			sr.Y = append(sr.Y, p.HPWL)
		}
		series = append(series, sr)
		fmt.Printf("%-3s: GPWL=%.5g LGWL=%.5g DPWL=%.5g (%d GP iters, %.1fs)\n",
			model, res.GPWL, res.LGWL, res.DPWL, res.GPIters, res.TotalSeconds)
	}

	wa, me := results["WA"], results["ME"]
	fmt.Printf("\nDPWL improvement of ME over WA: %.2f%%\n",
		100*(wa.DPWL-me.DPWL)/wa.DPWL)
	fmt.Println("(the paper reports ~5.4% on the real newblue1; smaller synthetic\n mirrors typically show a smaller but same-signed gap)")

	fmt.Println()
	fmt.Print(metrics.RenderSeries(
		"Fig. 3(a)-style trajectory: HPWL vs density overflow during GP",
		"overflow", "hpwl", series))
}
