// Quickstart: generate a small synthetic circuit and run the full placement
// flow (global placement with the Moreau-envelope wirelength model, Abacus
// legalization, detailed placement), printing the stage metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	// A 2000-cell circuit with contest-like structure.
	design, err := synth.Generate(synth.Spec{
		Name:          "quickstart",
		NumMovable:    2000,
		NumPads:       16,
		NumNets:       2200,
		AvgDegree:     3.9,
		Utilization:   0.7,
		TargetDensity: 1.0,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := design.ComputeStats()
	fmt.Printf("design: %d cells, %d nets, %d pins\n",
		stats.NumMovable, stats.NumNets, stats.NumPins)

	// "ME" is the paper's Moreau-envelope model; try "WA", "LSE" or
	// "BiG_CHKS" to compare.
	res, err := core.RunFlow(design, core.DefaultFlowConfig("ME"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global placement:   HPWL %.4g (overflow %.3f, %d iterations)\n",
		res.GPWL, res.Overflow, res.GPIters)
	fmt.Printf("legalization:       HPWL %.4g\n", res.LGWL)
	fmt.Printf("detailed placement: HPWL %.4g\n", res.DPWL)
	fmt.Printf("runtime: %.2fs, final placement legal: %v\n",
		res.TotalSeconds, res.LegalizationOK)
}
