# Standard verify entrypoint: `make check` is what CI (and humans) run.
GO ?= go

.PHONY: check fmt vet build test race bench placerd

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The job manager, telemetry, engine cancellation, and every parallel
# evaluation path (worker pool, density pipeline, wirelength reduction) must
# be clean under the race detector; the placer/density/wirelength suites
# include the parallel-vs-serial equivalence tests.
race:
	$(GO) test -race ./internal/service/... ./internal/placer/... \
		./internal/density/... ./internal/wirelength/... ./internal/parallel/...

# bench refreshes the machine-readable perf trajectory: every benchmark runs
# once and BENCH_PR2.json records ns/op + allocs/op per benchmark plus the
# workers=N speedups of the parallel density/eval pipeline.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | $(GO) run ./cmd/benchjson > BENCH_PR2.json
	@echo "wrote BENCH_PR2.json"

placerd:
	$(GO) build -o bin/placerd ./cmd/placerd
