# Standard verify entrypoint: `make check` is what CI (and humans) run.
GO ?= go
# Each PR writes its own trajectory file so earlier ones stay comparable.
BENCH ?= BENCH_PR10.json

.PHONY: check fmt vet build test race fuzz-seeds fuzz bench cover placerd trace-demo fleet-demo chaos-demo placertop-demo golden

check: fmt vet build test race fuzz-seeds

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The job manager (now including the durable store and result cache), the
# checkpoint codec, telemetry, engine cancellation, the numerical-health
# guard, the fault injection harness, and every parallel evaluation path
# (worker pool, density pipeline, wirelength reduction) must be clean under
# the race detector; the placer/density/wirelength suites include the
# parallel-vs-serial equivalence tests, the service suite includes the
# kill-and-recover, panic-isolation, and cache-hit tests, the fleet suite
# includes the journal crash-recovery and cancel-vs-dispatch race tests, and
# the ecocache/netlist suites cover the concurrent cache and content hashing
# the ECO fast path keys on.
race:
	$(GO) test -race ./internal/service/... ./internal/placer/... \
		./internal/checkpoint/... ./internal/density/... \
		./internal/wirelength/... ./internal/parallel/... \
		./internal/obs/... ./internal/guard/... ./internal/faultinject/... \
		./internal/fleet/... ./internal/chaos/... ./internal/ecocache/... \
		./internal/netlist/... ./internal/trajclient/... ./internal/placertop/...

# fuzz-seeds replays the fuzz seed corpora as regular tests (regression
# mode, no exploration) so `make check` keeps the known-hostile Bookshelf
# inputs and the content-hash invariance properties covered without the
# open-ended fuzzing time.
fuzz-seeds:
	$(GO) test -run=FuzzParse ./internal/bookshelf/
	$(GO) test -run=FuzzContentHashInvariance ./internal/netlist/

# fuzz explores: feed the Bookshelf parsers random inputs for a bounded time.
# Any crasher is written to internal/bookshelf/testdata/fuzz/ — commit it as
# a permanent regression seed after fixing.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/bookshelf/

# bench refreshes the machine-readable perf trajectory: every benchmark runs
# once and $(BENCH) records ns/op + allocs/op per benchmark plus the
# workers=N speedups of the parallel density/eval pipeline. benchjson is
# prebuilt and packages run serially (-p 1) so neither the converter's
# compile nor another package's build steals cycles from a measured
# iteration — at -benchtime=1x on a small machine that contention is visible
# in the numbers.
bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -p 1 -bench=. -benchtime=1x -run='^$$' ./... | ./bin/benchjson > $(BENCH)
	@echo "wrote $(BENCH)"

# cover writes an aggregate coverage profile and prints the per-package
# summary; open cover.html for the annotated source.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
	$(GO) tool cover -html=cover.out -o cover.html
	@echo "wrote cover.out and cover.html"

placerd:
	$(GO) build -o bin/placerd ./cmd/placerd

# trace-demo places a small synthetic design with span tracing on and leaves
# a Chrome trace behind: open trace-demo.trace.json in chrome://tracing or
# https://ui.perfetto.dev to see the per-iteration phase breakdown.
trace-demo:
	$(GO) run ./cmd/placer -cells 500 -iters 150 -model ME -skip-dp \
		-trace trace-demo.trace.json -log-level info
	@echo "open trace-demo.trace.json in chrome://tracing or ui.perfetto.dev"

# fleet-demo boots a two-worker fleet (coordinator + two placerd nodes on a
# shared checkpoint root), drives a short placerload smoke through it, and
# merges the latency/affinity/steal report into $(BENCH) under "fleet_load".
# placerload merges into the file while `make bench` rewrites it, so run
# bench first when you want both in one file. Everything runs on localhost
# and tears down when the load finishes.
fleet-demo:
	$(GO) build -o bin/placercoord ./cmd/placercoord
	$(GO) build -o bin/placerd ./cmd/placerd
	$(GO) build -o bin/placerload ./cmd/placerload
	@mkdir -p /tmp/fleet-demo/a /tmp/fleet-demo/b
	@./bin/placercoord -addr 127.0.0.1:7878 & echo $$! > /tmp/fleet-demo/coord.pid; \
	sleep 0.3; \
	./bin/placerd -addr 127.0.0.1:8081 -coordinator http://127.0.0.1:7878 \
		-node-id demo-a -advertise http://127.0.0.1:8081 \
		-data-dir /tmp/fleet-demo/a -resume-root /tmp/fleet-demo & echo $$! > /tmp/fleet-demo/a.pid; \
	./bin/placerd -addr 127.0.0.1:8082 -coordinator http://127.0.0.1:7878 \
		-node-id demo-b -advertise http://127.0.0.1:8082 \
		-data-dir /tmp/fleet-demo/b -resume-root /tmp/fleet-demo & echo $$! > /tmp/fleet-demo/b.pid; \
	sleep 1.5; \
	./bin/placerload -coordinator http://127.0.0.1:7878 \
		-jobs 24 -concurrency 6 -designs 4 -cells 300 -iters 40 \
		-resubmit-ratio 0.5 -out $(BENCH); \
	rc=$$?; \
	kill $$(cat /tmp/fleet-demo/a.pid /tmp/fleet-demo/b.pid /tmp/fleet-demo/coord.pid) 2>/dev/null; \
	rm -rf /tmp/fleet-demo; \
	exit $$rc

# chaos-demo is the crash-recovery smoke: a journaled coordinator fronting
# two durable workers takes a placerload batch with fault injection on
# (-chaos) while the coordinator is kill -9'd mid-load and restarted on the
# same journal. The workers re-register through agent backoff, the journal
# replay re-adopts their jobs, and placerload -require-all-done exits
# non-zero if even one accepted job failed to reach "done" — the zero-loss
# assertion. The report lands in $(BENCH) under "fleet_load.chaos".
chaos-demo:
	$(GO) build -o bin/placercoord ./cmd/placercoord
	$(GO) build -o bin/placerd ./cmd/placerd
	$(GO) build -o bin/placerload ./cmd/placerload
	@rm -rf /tmp/chaos-demo && mkdir -p /tmp/chaos-demo/a /tmp/chaos-demo/b
	@./bin/placercoord -addr 127.0.0.1:7879 -journal /tmp/chaos-demo/journal \
		& echo $$! > /tmp/chaos-demo/coord.pid; \
	sleep 0.3; \
	./bin/placerd -addr 127.0.0.1:8083 -coordinator http://127.0.0.1:7879 \
		-node-id chaos-a -advertise http://127.0.0.1:8083 \
		-data-dir /tmp/chaos-demo/a -resume-root /tmp/chaos-demo & echo $$! > /tmp/chaos-demo/a.pid; \
	./bin/placerd -addr 127.0.0.1:8084 -coordinator http://127.0.0.1:7879 \
		-node-id chaos-b -advertise http://127.0.0.1:8084 \
		-data-dir /tmp/chaos-demo/b -resume-root /tmp/chaos-demo & echo $$! > /tmp/chaos-demo/b.pid; \
	sleep 1.5; \
	./bin/placerload -coordinator http://127.0.0.1:7879 \
		-jobs 12 -concurrency 4 -designs 12 -cells 500 -iters 800 \
		-chaos -chaos-seed 7 -require-all-done -timeout 5m -out $(BENCH) \
		& echo $$! > /tmp/chaos-demo/load.pid; \
	sleep 2; \
	echo "chaos-demo: kill -9 coordinator mid-load"; \
	kill -9 $$(cat /tmp/chaos-demo/coord.pid) 2>/dev/null; \
	sleep 2; \
	echo "chaos-demo: restarting coordinator on the same journal"; \
	./bin/placercoord -addr 127.0.0.1:7879 -journal /tmp/chaos-demo/journal \
		& echo $$! > /tmp/chaos-demo/coord.pid; \
	wait $$(cat /tmp/chaos-demo/load.pid); \
	rc=$$?; \
	kill $$(cat /tmp/chaos-demo/a.pid /tmp/chaos-demo/b.pid /tmp/chaos-demo/coord.pid) 2>/dev/null; \
	rm -rf /tmp/chaos-demo; \
	if [ $$rc -eq 0 ]; then echo "chaos-demo: zero job loss across coordinator kill"; \
	else echo "chaos-demo: FAILED (rc=$$rc)"; fi; \
	exit $$rc

# placertop-demo boots the same two-worker fleet, submits a couple of jobs,
# and prints one headless placertop frame (the -once snapshot mode) before
# tearing down — the quickest way to see the dashboard without a live
# deployment. For the interactive view, run the fleet yourself and
# `bin/placertop -addr http://127.0.0.1:7878`.
placertop-demo:
	$(GO) build -o bin/placercoord ./cmd/placercoord
	$(GO) build -o bin/placerd ./cmd/placerd
	$(GO) build -o bin/placertop ./cmd/placertop
	@mkdir -p /tmp/placertop-demo/a /tmp/placertop-demo/b
	@./bin/placercoord -addr 127.0.0.1:7878 & echo $$! > /tmp/placertop-demo/coord.pid; \
	sleep 0.3; \
	./bin/placerd -addr 127.0.0.1:8081 -coordinator http://127.0.0.1:7878 \
		-node-id demo-a -advertise http://127.0.0.1:8081 \
		-data-dir /tmp/placertop-demo/a & echo $$! > /tmp/placertop-demo/a.pid; \
	./bin/placerd -addr 127.0.0.1:8082 -coordinator http://127.0.0.1:7878 \
		-node-id demo-b -advertise http://127.0.0.1:8082 \
		-data-dir /tmp/placertop-demo/b & echo $$! > /tmp/placertop-demo/b.pid; \
	sleep 1.5; \
	for seed in 1 2 3; do \
		curl -s -X POST http://127.0.0.1:7878/v1/jobs -H 'X-Tenant: demo' -d '{"design":{"synth":{"cells":400,"seed":'$$seed'}},"model":"ME","placer":{"max_iters":200,"grid_x":32,"grid_y":32},"flow":{"gp_only":true}}' > /dev/null; \
	done; \
	sleep 2; \
	./bin/placertop -once -addr http://127.0.0.1:7878 -width 110 -height 30; \
	rc=$$?; \
	kill $$(cat /tmp/placertop-demo/a.pid /tmp/placertop-demo/b.pid /tmp/placertop-demo/coord.pid) 2>/dev/null; \
	rm -rf /tmp/placertop-demo; \
	exit $$rc

# golden re-renders the placertop golden frames after a deliberate layout
# change. Inspect the diff before committing: the goldens are the
# dashboard's bit-exact rendering contract.
golden:
	$(GO) test ./internal/placertop/ -run TestGoldenFrames -update
