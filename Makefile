# Standard verify entrypoint: `make check` is what CI (and humans) run.
GO ?= go
# Each PR writes its own trajectory file so earlier ones stay comparable.
BENCH ?= BENCH_PR4.json

.PHONY: check fmt vet build test race fuzz-seeds fuzz bench cover placerd trace-demo

check: fmt vet build test race fuzz-seeds

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The job manager (now including the durable store), the checkpoint codec,
# telemetry, engine cancellation, the numerical-health guard, the fault
# injection harness, and every parallel evaluation path (worker pool, density
# pipeline, wirelength reduction) must be clean under the race detector; the
# placer/density/wirelength suites include the parallel-vs-serial equivalence
# tests, and the service suite includes the kill-and-recover and
# panic-isolation tests.
race:
	$(GO) test -race ./internal/service/... ./internal/placer/... \
		./internal/checkpoint/... ./internal/density/... \
		./internal/wirelength/... ./internal/parallel/... \
		./internal/obs/... ./internal/guard/... ./internal/faultinject/...

# fuzz-seeds replays the FuzzParse seed corpus as regular tests (regression
# mode, no exploration) so `make check` keeps the known-hostile Bookshelf
# inputs covered without the open-ended fuzzing time.
fuzz-seeds:
	$(GO) test -run=FuzzParse ./internal/bookshelf/

# fuzz explores: feed the Bookshelf parsers random inputs for a bounded time.
# Any crasher is written to internal/bookshelf/testdata/fuzz/ — commit it as
# a permanent regression seed after fixing.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/bookshelf/

# bench refreshes the machine-readable perf trajectory: every benchmark runs
# once and $(BENCH) records ns/op + allocs/op per benchmark plus the
# workers=N speedups of the parallel density/eval pipeline.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | $(GO) run ./cmd/benchjson > $(BENCH)
	@echo "wrote $(BENCH)"

# cover writes an aggregate coverage profile and prints the per-package
# summary; open cover.html for the annotated source.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
	$(GO) tool cover -html=cover.out -o cover.html
	@echo "wrote cover.out and cover.html"

placerd:
	$(GO) build -o bin/placerd ./cmd/placerd

# trace-demo places a small synthetic design with span tracing on and leaves
# a Chrome trace behind: open trace-demo.trace.json in chrome://tracing or
# https://ui.perfetto.dev to see the per-iteration phase breakdown.
trace-demo:
	$(GO) run ./cmd/placer -cells 500 -iters 150 -model ME -skip-dp \
		-trace trace-demo.trace.json -log-level info
	@echo "open trace-demo.trace.json in chrome://tracing or ui.perfetto.dev"
