# Standard verify entrypoint: `make check` is what CI (and humans) run.
GO ?= go

.PHONY: check fmt vet build test race placerd

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The job manager, telemetry, and engine cancellation paths must be clean
# under the race detector.
race:
	$(GO) test -race ./internal/service/... ./internal/placer/...

placerd:
	$(GO) build -o bin/placerd ./cmd/placerd
