// Package repro is a from-scratch Go reproduction of "On a Moreau Envelope
// Wirelength Model for Analytical Global Placement" (DAC 2023): an
// ePlace-style analytical global placer whose differentiable wirelength
// model is the Moreau envelope of the half-perimeter wirelength, computed
// exactly per net by a linear-time water-filling algorithm.
//
// The paper's contribution lives in internal/moreau; internal/wirelength
// holds the comparison models (LSE, WA, BiG-CHKS); internal/placer,
// internal/density, internal/fft, internal/optimizer form the electrostatic
// placement engine; internal/legalize and internal/detailed complete the
// flow; internal/synth generates ISPD-contest-like benchmarks; and
// internal/experiments regenerates every table and figure of the paper's
// evaluation. See README.md and DESIGN.md.
//
// The benchmarks in bench_test.go exercise each experiment's code path at
// reduced scale; the full-scale tables are produced by cmd/experiments.
package repro
