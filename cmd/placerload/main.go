// Command placerload is the fleet load/soak harness: it drives concurrent
// placement jobs through a placercoord coordinator from several tenants,
// honoring 429 + Retry-After backpressure, and records end-to-end latency
// percentiles (p50/p95/p99), rejection counts, and the coordinator's
// routing counters (affinity hits, steals, re-routes) into a benchmark
// JSON file.
//
// Usage:
//
//	placerload -coordinator http://localhost:7878
//	           [-jobs 32] [-concurrency 8] [-tenants default]
//	           [-designs 4] [-cells 400] [-iters 60] [-out BENCH_PR10.json]
//	           [-resubmit-ratio 0] [-soak 0]
//	           [-chaos] [-chaos-seed 1] [-chaos-latency 25ms]
//	           [-require-all-done]
//
// -designs controls how many distinct synthetic designs the job stream
// cycles through: fewer designs than jobs means resubmissions, which is
// what exercises checkpoint-affinity routing. With -soak > 0 the harness
// loops the whole job batch until the duration elapses (a soak run),
// accumulating latencies across rounds.
//
// -resubmit-ratio turns on ECO resubmission traffic: that fraction of the
// job stream re-sends designs that already completed once, alternating
// between byte-identical duplicates (served from the workers' result cache
// without a GP loop) and ECO children — the same design with a small
// synthetic perturbation and a "parent" reference, which the coordinator
// routes to the worker holding the parent's cached placement for a
// warm start. The report then gains an "eco" section with cache-outcome
// counts and warm-vs-cold latency percentiles.
//
// -chaos runs the whole load through a deterministic fault-injecting
// transport (internal/chaos): periodic latency spikes, dropped connections,
// and synthetic 500s on the harness↔coordinator path, seeded by -chaos-seed
// so a failing schedule reproduces exactly. Every job then submits with an
// idempotency key and retries transient failures with jittered backoff, so
// however many submits reach the coordinator at most one job exists per
// slot. The report gains a "chaos" section with injected-fault counts,
// retry totals, and the tail latencies the faults produced.
//
// -require-all-done makes the harness exit non-zero unless every job slot
// reached state "done" — the zero-job-loss assertion the chaos smoke test
// (make chaos-demo) relies on after killing the coordinator mid-load.
//
// The output file is merged, not overwritten: placerload owns only the
// top-level "fleet_load" key, so `make bench` results in the same file
// survive.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/fleet/client"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "placerload: %v\n", err)
		os.Exit(1)
	}
}

// jobResult is one job's outcome.
type jobResult struct {
	latency  time.Duration
	state    string
	rejected int    // 429s absorbed before acceptance
	retries  int    // transient submit retries under the idempotency key
	cache    string // worker cache outcome: "hit", "near_hit", "miss", or ""
	resubmit bool   // job was injected by the -resubmit-ratio stream
	fleetID  string // coordinator job ID (parent handle for ECO children)
	err      error
}

// loadReport is the "fleet_load" document merged into the bench JSON.
type loadReport struct {
	Coordinator string  `json:"coordinator"`
	Jobs        int     `json:"jobs"`
	Concurrency int     `json:"concurrency"`
	Tenants     int     `json:"tenants"`
	Designs     int     `json:"designs"`
	Cells       int     `json:"cells"`
	Iters       int     `json:"iters"`
	SoakSeconds float64 `json:"soak_seconds,omitempty"`
	CPUs        int     `json:"cpus"`

	Done      int     `json:"done"`
	Failed    int     `json:"failed"`
	Errors    int     `json:"errors"`
	Rejected  int     `json:"rejected_429"`
	P50Ms     float64 `json:"latency_p50_ms"`
	P95Ms     float64 `json:"latency_p95_ms"`
	P99Ms     float64 `json:"latency_p99_ms"`
	MeanMs    float64 `json:"latency_mean_ms"`
	MaxMs     float64 `json:"latency_max_ms"`
	WallSecs  float64 `json:"wall_seconds"`
	Throughpt float64 `json:"jobs_per_second"`

	Fleet fleet.Counters `json:"fleet_counters"`
	Eco   *ecoReport     `json:"eco,omitempty"`
	Chaos *chaosReport   `json:"chaos,omitempty"`
}

// chaosReport is the fault-injection section of the fleet_load document,
// present when -chaos is on: what was injected, how hard the harness had to
// retry, and what the faults did to the latency tail. Zero-loss recovery
// shows up as Done == Jobs×rounds with SubmitRetries > 0 and the
// coordinator's recovered/rerouted counters in fleet_counters.
type chaosReport struct {
	Seed          int64       `json:"seed"`
	Transport     chaos.Stats `json:"transport"`
	SubmitRetries int         `json:"submit_retries"`
	// TailP99Ms/TailMaxMs duplicate the top-level p99/max for easy diffing
	// against a fault-free run of the same shape.
	TailP99Ms float64 `json:"tail_p99_ms"`
	TailMaxMs float64 `json:"tail_max_ms"`
}

// ecoReport is the resubmission-traffic section of the fleet_load document,
// present when -resubmit-ratio > 0. Latency percentiles are split by the
// worker's cache outcome so the warm-vs-cold serving gap is visible: "hit"
// jobs skip the GP loop entirely, "near_hit" jobs warm-start from a parent
// placement with most lanes frozen, "cold" jobs run the full flow.
type ecoReport struct {
	ResubmitRatio float64 `json:"resubmit_ratio"`
	Resubmitted   int     `json:"resubmitted"`
	// Hits/NearHits/Misses count cache outcomes across ALL done jobs — in a
	// soak run, later cold rounds of an already-seen design hit the cache
	// too, not just the injected resubmissions. HitRate is narrower: the
	// fraction of injected resubmissions served from cache (hit or near hit).
	Hits     int     `json:"hits"`
	NearHits int     `json:"near_hits"`
	Misses   int     `json:"misses"`
	HitRate  float64 `json:"hit_rate"`

	HitP50Ms  float64 `json:"hit_latency_p50_ms"`
	HitP95Ms  float64 `json:"hit_latency_p95_ms"`
	WarmP50Ms float64 `json:"warm_latency_p50_ms"`
	WarmP95Ms float64 `json:"warm_latency_p95_ms"`
	ColdP50Ms float64 `json:"cold_latency_p50_ms"`
	ColdP95Ms float64 `json:"cold_latency_p95_ms"`
	// WarmVsColdP50 is warm p50 / cold p50 — below 1.0 means ECO
	// resubmissions are served faster than cold starts.
	WarmVsColdP50 float64 `json:"warm_vs_cold_p50,omitempty"`
}

// parentBook remembers, per design index, the fleet job ID of the first
// completed cold run — the handle ECO children pass as spec.Parent. First
// writer wins so every child of a design names the same parent.
type parentBook struct {
	mu  sync.Mutex
	ids map[int]string
	seq int // resubmission counter, alternates exact vs ECO
}

func newParentBook() *parentBook { return &parentBook{ids: make(map[int]string)} }

func (b *parentBook) get(d int) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id, ok := b.ids[d]
	return id, ok
}

func (b *parentBook) put(d int, id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.ids[d]; !ok {
		b.ids[d] = id
	}
}

func (b *parentBook) nextSeq() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	return b.seq
}

func run(argv []string) error {
	fs := flag.NewFlagSet("placerload", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://localhost:7878", "coordinator base URL")
		jobs        = fs.Int("jobs", 32, "jobs per round")
		concurrency = fs.Int("concurrency", 8, "concurrent submitters")
		tenants     = fs.String("tenants", "default", "comma-separated tenant names to spread load across")
		designs     = fs.Int("designs", 4, "distinct synthetic designs cycled through (fewer than -jobs exercises checkpoint affinity)")
		cells       = fs.Int("cells", 400, "movable cells per synthetic design")
		iters       = fs.Int("iters", 60, "GP iteration budget per job")
		soak        = fs.Duration("soak", 0, "repeat rounds until this duration elapses (0 = one round)")
		resubmit    = fs.Float64("resubmit-ratio", 0, "fraction of jobs re-sent as cache resubmissions (alternating exact duplicates and perturbed ECO children)")
		out         = fs.String("out", "BENCH_PR10.json", "bench JSON file to merge the fleet_load report into")
		timeout     = fs.Duration("timeout", 10*time.Minute, "overall harness deadline")
		chaosOn     = fs.Bool("chaos", false, "inject deterministic faults (latency, drops, 500s) into the coordinator path")
		chaosSeed   = fs.Int64("chaos-seed", 1, "fault-plan seed (same seed + same request sequence = same injections)")
		chaosLat    = fs.Duration("chaos-latency", 25*time.Millisecond, "injected latency-spike size for -chaos")
		requireAll  = fs.Bool("require-all-done", false, "exit non-zero unless every job reached state done (zero-loss assertion)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	tenantNames := strings.Split(*tenants, ",")
	if *designs <= 0 {
		*designs = 1
	}
	if *resubmit < 0 || *resubmit > 1 {
		return fmt.Errorf("-resubmit-ratio %v out of [0,1]", *resubmit)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// The probe client stays fault-free even under -chaos: it is harness
	// bookkeeping (worker discovery, final counters), not the traffic whose
	// resilience is being measured.
	probe := &client.Client{Base: *coordinator}
	if st, err := probe.Fleet(ctx); err != nil {
		return fmt.Errorf("coordinator unreachable: %w", err)
	} else if len(st.Workers) == 0 {
		return errors.New("fleet has no registered workers; start placerd with -coordinator first")
	}

	var tr *chaos.Transport
	httpc := &http.Client{Timeout: 30 * time.Second}
	if *chaosOn {
		tr = chaos.NewTransport(nil, *chaosSeed, 16, chaos.DefaultRules(*chaosLat)...)
		httpc.Transport = tr
		fmt.Fprintf(os.Stderr, "placerload: chaos on (seed %d, latency %s)\n", *chaosSeed, *chaosLat)
	}
	// Idempotency keys are namespaced by a per-run nonce so two harness runs
	// against the same coordinator never dedupe each other's slots.
	runID := time.Now().UnixNano()

	var (
		mu      sync.Mutex
		results []jobResult
	)
	book := newParentBook()
	start := time.Now()
	round := 0
	for {
		round++
		runRound(ctx, *coordinator, httpc, runID, tenantNames, *jobs, *concurrency, *designs, *cells, *iters, round, *resubmit, book, func(r jobResult) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		})
		if *soak <= 0 || time.Since(start) >= *soak || ctx.Err() != nil {
			break
		}
		fmt.Fprintf(os.Stderr, "placerload: round %d done (%d results, %s elapsed)\n",
			round, len(results), time.Since(start).Round(time.Second))
	}
	wall := time.Since(start)

	st, err := probe.Fleet(ctx)
	if err != nil {
		return fmt.Errorf("final fleet status: %w", err)
	}

	rep := buildReport(results, wall, st.Counters, *resubmit)
	if tr != nil {
		retries := 0
		for _, r := range results {
			retries += r.retries
		}
		rep.Chaos = &chaosReport{
			Seed:          *chaosSeed,
			Transport:     tr.Stats(),
			SubmitRetries: retries,
			TailP99Ms:     rep.P99Ms,
			TailMaxMs:     rep.MaxMs,
		}
	}
	rep.Coordinator = *coordinator
	rep.Jobs = *jobs
	rep.Concurrency = *concurrency
	rep.Tenants = len(tenantNames)
	rep.Designs = *designs
	rep.Cells = *cells
	rep.Iters = *iters
	rep.SoakSeconds = soak.Seconds()
	rep.CPUs = runtime.NumCPU()

	if err := mergeReport(*out, rep); err != nil {
		return err
	}
	fmt.Printf("placerload: %d done, %d failed, %d errors, %d 429s | p50 %.0fms p95 %.0fms p99 %.0fms | affinity %d, stolen %d, rerouted %d | %s\n",
		rep.Done, rep.Failed, rep.Errors, rep.Rejected, rep.P50Ms, rep.P95Ms, rep.P99Ms,
		rep.Fleet.AffinityHits, rep.Fleet.Stolen, rep.Fleet.Rerouted, *out)
	if rep.Eco != nil {
		fmt.Printf("placerload: eco %d resubmitted, %d hits, %d near hits, %d misses | hit p50 %.0fms, warm p50 %.0fms, cold p50 %.0fms | parent routes %d\n",
			rep.Eco.Resubmitted, rep.Eco.Hits, rep.Eco.NearHits, rep.Eco.Misses,
			rep.Eco.HitP50Ms, rep.Eco.WarmP50Ms, rep.Eco.ColdP50Ms, rep.Fleet.ParentRoutes)
	}
	if rep.Chaos != nil {
		fmt.Printf("placerload: chaos injected %d (latency %d, drops %d, 500s %d) across %d requests | %d submit retries | recovered %d, rerouted %d\n",
			rep.Chaos.Transport.Injected(), rep.Chaos.Transport.Latency, rep.Chaos.Transport.Drops,
			rep.Chaos.Transport.HTTP500s, rep.Chaos.Transport.Requests, rep.Chaos.SubmitRetries,
			rep.Fleet.Recovered, rep.Fleet.Rerouted)
	}
	if *requireAll && rep.Done != len(results) {
		return fmt.Errorf("job loss: %d of %d slots reached done (%d failed, %d errors)",
			rep.Done, len(results), rep.Failed, rep.Errors)
	}
	return nil
}

// runRound submits one batch of jobs through a bounded worker pool and
// waits for every job to reach a terminal state. With ratio > 0 that
// fraction of the stream (spread evenly across job indices) is turned into
// resubmissions of designs whose first run already completed: even
// resubmission slots re-send the byte-identical spec (exact cache hit), odd
// slots send an ECO child — the same design plus a small perturbation and
// the parent's fleet job ID (near hit via warm start).
func runRound(ctx context.Context, base string, httpc *http.Client, runID int64, tenants []string, jobs, concurrency, designs, cells, iters, round int, ratio float64, book *parentBook, record func(jobResult)) {
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			d := i % designs
			spec := specFor(d, cells, iters)
			resub := false
			// Deterministic even spread: slot i is a resubmission when the
			// running count int(i*ratio) ticks up, and a parent exists.
			if ratio > 0 && int(float64(i+1)*ratio) > int(float64(i)*ratio) {
				if parentID, ok := book.get(d); ok {
					resub = true
					if book.nextSeq()%2 == 1 {
						spec.Parent = parentID
						spec.Design.Perturb = &service.PerturbSpec{
							Seed:     int64(round)*100000 + int64(i),
							CellFrac: 0.01,
						}
					}
				}
			}
			// A generous retry budget: the harness must ride out a
			// coordinator kill/restart window, not just single blips.
			c := &client.Client{Base: base, Tenant: tenants[i%len(tenants)], HTTP: httpc, Retries: 12}
			// One key per (run, round, slot): stable across this slot's
			// submit retries, unique across everything else.
			key := fmt.Sprintf("load-%x-r%d-i%d", runID, round, i)
			r := oneJob(ctx, c, spec, key)
			r.resubmit = resub
			record(r)
			if !resub && r.err == nil && r.state == string(service.StateDone) {
				book.put(d, r.fleetID)
			}
		}(i)
	}
	wg.Wait()
}

// specFor builds the d-th synthetic design spec. The seed is a pure
// function of d, so two jobs with the same d are byte-identical specs —
// the coordinator's affinity map routes the repeat to the same worker.
func specFor(d, cells, iters int) service.JobSpec {
	return service.JobSpec{
		Design: service.DesignSpec{Synth: &service.SynthSpec{
			Name:  fmt.Sprintf("load-%03d", d),
			Cells: cells,
			Seed:  int64(1000 + d),
		}},
		Model:  "ME",
		Placer: service.PlacerSpec{MaxIters: iters, Workers: 1, Seed: int64(1 + d)},
		Flow:   service.FlowSpec{GPOnly: true},
	}
}

// oneJob submits one spec under its idempotency key — absorbing 429
// backpressure for the advertised Retry-After and retrying transient
// failures (injected or real) with jittered backoff — then waits for it to
// finish, tolerating transient poll failures the same way.
func oneJob(ctx context.Context, c *client.Client, spec service.JobSpec, idemKey string) jobResult {
	var res jobResult
	start := time.Now()
	v, rejected, retries, err := c.SubmitRetry(ctx, spec, idemKey)
	res.rejected, res.retries = rejected, retries
	if err != nil {
		res.err = err
		return res
	}
	final, err := c.WaitTerminal(ctx, v.ID)
	if err != nil {
		res.err = err
		return res
	}
	res.latency = time.Since(start)
	res.state = final.State
	res.fleetID = final.ID
	if final.Job != nil {
		res.cache = final.Job.Cache
	}
	return res
}

// buildReport folds results into the percentile summary. With ratio > 0 it
// also splits done-job latencies by cache outcome into the eco section:
// exact hits, warm starts (near hits), and cold runs (misses plus jobs on
// workers without a cache, which report no outcome).
func buildReport(results []jobResult, wall time.Duration, counters fleet.Counters, ratio float64) loadReport {
	rep := loadReport{Fleet: counters, WallSecs: wall.Seconds()}
	eco := &ecoReport{ResubmitRatio: ratio}
	resubServed := 0
	var lats, hitLats, warmLats, coldLats []float64
	for _, r := range results {
		rep.Rejected += r.rejected
		if r.resubmit {
			eco.Resubmitted++
		}
		switch {
		case r.err != nil:
			rep.Errors++
		case r.state == string(service.StateDone):
			rep.Done++
			ms := float64(r.latency.Milliseconds())
			lats = append(lats, ms)
			switch r.cache {
			case "hit":
				eco.Hits++
				hitLats = append(hitLats, ms)
			case "near_hit":
				eco.NearHits++
				warmLats = append(warmLats, ms)
			default:
				if r.cache == "miss" {
					eco.Misses++
				}
				coldLats = append(coldLats, ms)
			}
			if r.resubmit && (r.cache == "hit" || r.cache == "near_hit") {
				resubServed++
			}
		default:
			rep.Failed++
		}
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		rep.P50Ms = percentile(lats, 50)
		rep.P95Ms = percentile(lats, 95)
		rep.P99Ms = percentile(lats, 99)
		rep.MaxMs = lats[len(lats)-1]
		sum := 0.0
		for _, v := range lats {
			sum += v
		}
		rep.MeanMs = sum / float64(len(lats))
	}
	if wall > 0 {
		rep.Throughpt = float64(rep.Done) / wall.Seconds()
	}
	if ratio > 0 {
		if eco.Resubmitted > 0 {
			eco.HitRate = float64(resubServed) / float64(eco.Resubmitted)
		}
		sort.Float64s(hitLats)
		sort.Float64s(warmLats)
		sort.Float64s(coldLats)
		eco.HitP50Ms, eco.HitP95Ms = percentile(hitLats, 50), percentile(hitLats, 95)
		eco.WarmP50Ms, eco.WarmP95Ms = percentile(warmLats, 50), percentile(warmLats, 95)
		eco.ColdP50Ms, eco.ColdP95Ms = percentile(coldLats, 50), percentile(coldLats, 95)
		if eco.ColdP50Ms > 0 {
			eco.WarmVsColdP50 = eco.WarmP50Ms / eco.ColdP50Ms
		}
		rep.Eco = eco
	}
	return rep
}

// percentile reads the p-th percentile from sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// mergeReport writes rep under the "fleet_load" key of the bench JSON,
// preserving whatever other keys (benchjson output) the file already holds.
func mergeReport(path string, rep loadReport) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		// Tolerate a non-object file (e.g. truncated) by starting fresh.
		_ = json.Unmarshal(data, &doc)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["fleet_load"] = blob
	outData, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(outData, '\n'), 0o644)
}
