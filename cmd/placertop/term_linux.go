//go:build linux

package main

import (
	"os"
	"syscall"
	"unsafe"
)

type winsize struct {
	rows, cols, xpix, ypix uint16
}

// termSize queries the controlling terminal's dimensions.
func termSize() (w, h int, ok bool) {
	var ws winsize
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, os.Stdout.Fd(),
		syscall.TIOCGWINSZ, uintptr(unsafe.Pointer(&ws)))
	if errno != 0 || ws.cols == 0 || ws.rows == 0 {
		return 0, 0, false
	}
	return int(ws.cols), int(ws.rows), true
}

// enableRawInput switches stdin to unbuffered, no-echo reads so single
// keypresses arrive immediately. Returns a restore function; on a
// non-terminal stdin it is a no-op and input stays line-buffered.
func enableRawInput() func() {
	fd := os.Stdin.Fd()
	var old syscall.Termios
	if _, _, errno := syscall.Syscall(syscall.SYS_IOCTL, fd,
		syscall.TCGETS, uintptr(unsafe.Pointer(&old))); errno != 0 {
		return func() {}
	}
	raw := old
	raw.Lflag &^= syscall.ICANON | syscall.ECHO
	raw.Cc[syscall.VMIN] = 1
	raw.Cc[syscall.VTIME] = 0
	syscall.Syscall(syscall.SYS_IOCTL, fd, syscall.TCSETS, uintptr(unsafe.Pointer(&raw))) //nolint:errcheck
	return func() {
		syscall.Syscall(syscall.SYS_IOCTL, fd, syscall.TCSETS, uintptr(unsafe.Pointer(&old))) //nolint:errcheck
	}
}
