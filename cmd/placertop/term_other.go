//go:build !linux

package main

import (
	"os"
	"strconv"
)

// termSize falls back to the COLUMNS/LINES environment on platforms
// without the ioctl path.
func termSize() (w, h int, ok bool) {
	w, _ = strconv.Atoi(os.Getenv("COLUMNS"))
	h, _ = strconv.Atoi(os.Getenv("LINES"))
	return w, h, w > 0 && h > 0
}

// enableRawInput is a no-op without termios; input stays line-buffered
// ('q<Enter>' still quits).
func enableRawInput() func() { return func() {} }
