// Command placertop is the placement fleet's top(1): a live terminal
// dashboard over a placercoord coordinator (or a single placerd worker)
// plus an offline replay viewer for recorded NDJSON trajectories.
//
// Usage:
//
//	placertop [-addr http://localhost:7878] [-interval 1s]   live dashboard
//	placertop -once [-addr ...] [-width 100] [-height 30]    one plain-text frame
//	placertop -replay traj.ndjson [-speed 2]                 offline replay
//
// Live mode polls GET /v1/fleet/overview (falling back to a bare worker's
// /stats and /jobs) and tails the active jobs' trajectory streams for the
// convergence sparklines. Replay mode scrubs through a recording captured
// with e.g.
//
//	curl -Ns $COORD/v1/jobs/$ID/trajectory > traj.ndjson
//
// Keys: q quits; in replay, space pauses, , and . step, + and - change
// speed, 0 rewinds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/placertop"
)

func main() {
	fs := flag.NewFlagSet("placertop", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:7878", "coordinator or worker base URL")
		interval = fs.Duration("interval", time.Second, "live poll interval")
		once     = fs.Bool("once", false, "print one plain-text frame and exit")
		replay   = fs.String("replay", "", "replay a recorded NDJSON trajectory file instead of going live")
		speed    = fs.Int("speed", 2, "replay points per tick")
		width    = fs.Int("width", 0, "frame width (default: terminal, else 100)")
		height   = fs.Int("height", 0, "frame height (default: terminal, else 30)")
	)
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case *once:
		err = runOnce(ctx, *addr, *width, *height)
	case *replay != "":
		err = runReplay(ctx, *replay, *speed, *interval, *width, *height)
	default:
		err = runLive(ctx, *addr, *interval, *width, *height)
	}
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "placertop:", err)
		os.Exit(1)
	}
}

// frameSize resolves the render size: explicit flags win, then the
// terminal, then an 100×30 fallback for pipes.
func frameSize(w, h int) (int, int) {
	tw, th, ok := termSize()
	if !ok {
		tw, th = 100, 30
	}
	if w <= 0 {
		w = tw
	}
	if h <= 0 {
		h = th
	}
	return w, h
}

// runOnce renders a single headless snapshot to stdout — the scripting and
// smoke-test mode.
func runOnce(ctx context.Context, addr string, w, h int) error {
	col := placertop.NewCollector(addr)
	snap, err := col.Snapshot(ctx)
	if err != nil {
		return err
	}
	w, h = frameSize(w, h)
	_, err = os.Stdout.WriteString(placertop.Render(snap, w, h).Plain())
	return err
}

// runLive drives the polling dashboard until the context ends or q is
// pressed.
func runLive(ctx context.Context, addr string, interval time.Duration, w, h int) error {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	col := placertop.NewCollector(addr)
	keys, restore := openKeys()
	defer restore()
	enterAltScreen()
	defer leaveAltScreen()

	var lastErr error
	seq := 0
	render := func() {
		fw, fh := frameSize(w, h)
		snap, err := col.Snapshot(ctx)
		if err != nil {
			lastErr = err
			drawError(fw, fh, addr, err, seq)
			return
		}
		lastErr = nil
		os.Stdout.WriteString(placertop.Render(snap, fw, fh).ANSI()) //nolint:errcheck
	}
	render()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			seq++
			render()
		case k, ok := <-keys:
			if !ok { // stdin closed (piped input drained): poll-only from here
				keys = nil
				continue
			}
			if k == 'q' || k == 3 { // q or ctrl-C
				return lastErr
			}
			if k == 'r' {
				render()
			}
		}
	}
}

// runReplay scrubs through a recorded trajectory.
func runReplay(ctx context.Context, path string, speed int, interval time.Duration, w, h int) error {
	pts, err := placertop.LoadTrajectory(path)
	if err != nil {
		return err
	}
	if speed < 1 {
		speed = 1
	}
	if interval <= 0 || interval > 500*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	rp := &placertop.ReplayState{File: path, Points: pts, Speed: speed}
	snap := &placertop.Snapshot{Mode: "replay", Replay: rp}

	keys, restore := openKeys()
	defer restore()
	enterAltScreen()
	defer leaveAltScreen()

	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		fw, fh := frameSize(w, h)
		os.Stdout.WriteString(placertop.Render(snap, fw, fh).ANSI()) //nolint:errcheck
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			snap.Seq++
			rp.Step()
		case k, ok := <-keys:
			if !ok {
				keys = nil
				continue
			}
			switch k {
			case 'q', 3:
				return nil
			case ' ':
				rp.Paused = !rp.Paused
			case '.':
				rp.Advance(1)
			case ',':
				rp.Advance(-1)
			case '+', '=':
				rp.Speed++
			case '-':
				if rp.Speed > 1 {
					rp.Speed--
				}
			case '0':
				rp.Pos = 0
			}
		}
	}
}

// drawError paints a minimal frame when a poll fails so the dashboard
// degrades visibly instead of freezing on stale data.
func drawError(w, h int, addr string, err error, seq int) {
	f := placertop.NewFrame(w, h)
	f.Text(0, 0, "placertop", placertop.STitle)
	f.Text(10, 0, "· "+addr, placertop.SDim)
	f.Text(2, 2, "poll failed: "+err.Error(), placertop.SBad)
	f.Text(2, 4, fmt.Sprintf("retrying (attempt #%d) — q to quit", seq), placertop.SDim)
	os.Stdout.WriteString(f.ANSI()) //nolint:errcheck
}

func enterAltScreen() { os.Stdout.WriteString("\x1b[?1049h\x1b[?25l\x1b[2J") } //nolint:errcheck
func leaveAltScreen() { os.Stdout.WriteString("\x1b[?25h\x1b[?1049l") }        //nolint:errcheck

// openKeys starts the keyboard reader. With a raw-capable TTY, keys arrive
// per press; otherwise (pipe, unsupported OS) line-buffered input still
// works for 'q<Enter>'. The restore function undoes any terminal changes.
func openKeys() (<-chan byte, func()) {
	restore := enableRawInput()
	ch := make(chan byte, 8)
	go func() {
		buf := make([]byte, 1)
		for {
			n, err := os.Stdin.Read(buf)
			if err != nil {
				close(ch)
				return
			}
			if n == 1 {
				select {
				case ch <- buf[0]:
				default: // drop keys rather than block the reader
				}
			}
		}
	}()
	return ch, restore
}
