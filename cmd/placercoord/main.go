// Command placercoord runs the fleet coordinator: it registers placerd
// workers through heartbeats, routes submitted jobs across them by
// rendezvous hashing with checkpoint-affinity override, steals queued work
// from hot nodes onto idle ones, re-routes jobs off dead workers (resuming
// from their durable checkpoints when a shared filesystem makes them
// reachable), and enforces multi-tenant admission control with 429 +
// Retry-After backpressure.
//
// Usage:
//
//	placercoord [-addr :7878] [-heartbeat-ttl 5s] [-tick 500ms]
//	            [-pending 256] [-retention 1024] [-tenants tenants.json]
//	            [-journal ""] [-log-format text|json] [-log-level info]
//
// With -journal the coordinator keeps a crash-safe job journal at that path:
// every accepted job is fsynced before the submit is acknowledged, and a
// restarted coordinator replays the journal — re-adopting jobs still running
// on live workers, re-routing assignments whose worker never returns, and
// re-queueing anything unplaced — so kill -9 loses no accepted work.
//
// The -tenants file is a JSON document:
//
//	{
//	  "defaults": {"class": "batch", "rate": 0, "max_in_flight": 0},
//	  "tenants": [
//	    {"name": "ci", "class": "batch", "rate": 2, "burst": 4, "max_in_flight": 8},
//	    {"name": "interactive", "class": "prod", "max_in_flight": 4},
//	    {"name": "scavenger", "class": "free", "rate": 0.5}
//	  ]
//	}
//
// Endpoints: POST /v1/workers/heartbeat, POST /v1/jobs (X-Tenant header),
// GET /v1/jobs, GET /v1/jobs/{id}, DELETE /v1/jobs/{id},
// GET /v1/jobs/{id}/trajectory (proxied NDJSON stream), GET /v1/fleet,
// GET /metrics, GET /healthz, GET /readyz.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flag"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "placercoord: %v\n", err)
		os.Exit(1)
	}
}

// tenantsFile is the -tenants JSON document.
type tenantsFile struct {
	Defaults fleet.TenantConfig   `json:"defaults"`
	Tenants  []fleet.TenantConfig `json:"tenants"`
}

func run(argv []string) error {
	fs := flag.NewFlagSet("placercoord", flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":7878", "listen address")
		ttl       = fs.Duration("heartbeat-ttl", 5*time.Second, "worker expiry: re-route jobs after this long without a heartbeat")
		tick      = fs.Duration("tick", 500*time.Millisecond, "maintenance loop period (expiry, state sync, dispatch, stealing)")
		pending   = fs.Int("pending", 256, "admitted jobs held waiting for fleet capacity before 429")
		retention = fs.Int("retention", 1024, "finished fleet jobs kept for inspection")
		tenants   = fs.String("tenants", "", "tenant admission policy JSON file (empty admits everything)")
		journal   = fs.String("journal", "", "crash-safe job journal path (empty keeps the job table in memory only)")
		logFormat = fs.String("log-format", "text", "log encoding: text or json")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn, error")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.New(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}

	var tf tenantsFile
	if *tenants != "" {
		data, err := os.ReadFile(*tenants)
		if err != nil {
			return fmt.Errorf("read tenants file: %w", err)
		}
		if err := json.Unmarshal(data, &tf); err != nil {
			return fmt.Errorf("parse tenants file %s: %w", *tenants, err)
		}
	}
	adm, err := fleet.NewAdmission(tf.Defaults, tf.Tenants, nil)
	if err != nil {
		return err
	}

	coord, err := fleet.NewCoordinator(fleet.Config{
		HeartbeatTTL: *ttl,
		PendingLimit: *pending,
		Retention:    *retention,
		Admission:    adm,
		Log:          logger,
		JournalPath:  *journal,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go coord.Run(ctx, *tick)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           fleet.NewHandler(coord),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("placercoord listening", "addr", *addr,
		"heartbeat_ttl", ttl.String(), "tenants", len(tf.Tenants))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http shutdown", "err", err)
	}
	logger.Info("bye")
	return nil
}
