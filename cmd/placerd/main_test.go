package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// jobView mirrors the subset of the JSON job snapshot the test needs.
type jobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Progress *struct {
		Iteration int     `json:"iteration"`
		HPWL      float64 `json:"hpwl"`
		Overflow  float64 `json:"overflow"`
	} `json:"progress"`
	Result *struct {
		DPWL float64 `json:"DPWL"`
	} `json:"result"`
	Resumes int `json:"resumes"`
}

func postJob(t *testing.T, base string, spec string) jobView {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs status = %d (%s), want 202", resp.StatusCode, body)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s status = %d, want 200", id, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// slowJob runs effectively forever (GP only, unreachable stop overflow) so
// the test controls its lifetime via DELETE.
const slowJob = `{
  "design": {"synth": {"cells": 64, "seed": 1}},
  "model": "WA",
  "placer": {"max_iters": 1048576, "stop_overflow": 1e-9, "grid_x": 16, "grid_y": 16},
  "flow": {"gp_only": true}
}`

const fastJob = `{
  "design": {"synth": {"cells": 64, "seed": 2}},
  "model": "WA",
  "placer": {"max_iters": 25, "stop_overflow": 1e-9, "grid_x": 16, "grid_y": 16},
  "flow": {"gp_only": true}
}`

// TestPlacerdFullLifecycle drives the daemon's handler end-to-end exactly as
// main wires it: submit a synthetic-design job and watch its iteration count
// advance, cancel a queued job and a running job, complete a third job, read
// its trajectory, and scrape /metrics for non-zero job counters.
func TestPlacerdFullLifecycle(t *testing.T) {
	mgr := service.NewManager(service.Config{Workers: 1, QueueDepth: 4})
	srv := httptest.NewServer(service.NewHandler(mgr))
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mgr.Shutdown(ctx) //nolint:errcheck // test teardown
	}()

	// Submit job A and observe it running with an advancing iteration count.
	a := postJob(t, srv.URL, slowJob)
	var firstIter int
	pollUntil(t, "job A running with progress", func() bool {
		v := getJob(t, srv.URL, a.ID)
		if v.State == "running" && v.Progress != nil && v.Progress.Iteration > 0 {
			firstIter = v.Progress.Iteration
			return true
		}
		return false
	})
	pollUntil(t, "job A iteration count to advance", func() bool {
		v := getJob(t, srv.URL, a.ID)
		return v.Progress != nil && v.Progress.Iteration > firstIter
	})

	// Job B sits in the queue behind A; cancelling it is immediate.
	b := postJob(t, srv.URL, slowJob)
	if v := getJob(t, srv.URL, b.ID); v.State != "queued" {
		t.Fatalf("job B state = %s, want queued", v.State)
	}
	if v := deleteJob(t, srv.URL, b.ID); v.State != "cancelled" {
		t.Fatalf("cancelled queued job B state = %s, want cancelled", v.State)
	}

	// Cancel the running job A; the engine notices within one iteration.
	deleteJob(t, srv.URL, a.ID)
	pollUntil(t, "job A cancelled", func() bool {
		return getJob(t, srv.URL, a.ID).State == "cancelled"
	})

	// Job C runs to completion and yields a result plus a trajectory.
	c := postJob(t, srv.URL, fastJob)
	pollUntil(t, "job C done", func() bool {
		return getJob(t, srv.URL, c.ID).State == "done"
	})
	cv := getJob(t, srv.URL, c.ID)
	if cv.Result == nil || cv.Result.DPWL <= 0 {
		t.Errorf("job C finished without a usable result: %+v", cv.Result)
	}
	var traj struct {
		Trajectory []struct {
			Iter int     `json:"iter"`
			HPWL float64 `json:"hpwl"`
		} `json:"trajectory"`
	}
	getJSON(t, srv.URL+"/jobs/"+c.ID+"/trajectory", &traj)
	if len(traj.Trajectory) == 0 {
		t.Error("job C has an empty trajectory")
	}

	// All three jobs are listed.
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	getJSON(t, srv.URL+"/jobs", &list)
	if len(list.Jobs) != 3 {
		t.Errorf("GET /jobs returned %d jobs, want 3", len(list.Jobs))
	}

	// The streaming trajectory endpoint serves the finished job as NDJSON.
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + c.ID + "/trajectory?follow=false")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp2.StatusCode)
	}
	lines := bytes.Count(bytes.TrimSpace(stream), []byte("\n")) + 1
	if lines < 25 {
		t.Errorf("trajectory stream has %d lines, want >= 25 (one per iteration)", lines)
	}

	// The metrics scrape reflects the lifecycle: counter increments happen
	// on the worker goroutine, so poll until they settle. The engine
	// histograms come along for free once any job has run.
	pollUntil(t, "metrics to reflect job outcomes", func() bool {
		m := scrapeMetrics(t, srv.URL)
		return m["placerd_jobs_submitted_total"] == 3 &&
			m[`placerd_jobs_finished_total{state="done"}`] == 1 &&
			m[`placerd_jobs_finished_total{state="cancelled"}`] == 2 &&
			m["placerd_gp_iterations_total"] > 0 &&
			m["placerd_gp_iteration_seconds_count"] > 0 &&
			m[`placerd_gp_phase_seconds_count{phase="wirelength"}`] > 0 &&
			m[`placerd_gp_phase_seconds_count{phase="poisson-solve"}`] > 0
	})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d, want 200", resp.StatusCode)
	}
}

// durableJob pins the worker count so the resumed run is bit-identical to an
// uninterrupted one (determinism holds per worker count).
const durableJob = `{
  "design": {"synth": {"cells": 64, "seed": 3}},
  "model": "WA",
  "placer": {"max_iters": 300, "stop_overflow": 1e-9, "grid_x": 16, "grid_y": 16, "workers": 1},
  "flow": {"gp_only": true}
}`

// TestPlacerdKillAndRestartRecovery kills a durable daemon mid-job and boots
// a second one on the same data dir: the interrupted job must be recovered,
// resumed from its snapshot, and finish over the restarted HTTP API.
func TestPlacerdKillAndRestartRecovery(t *testing.T) {
	dataDir := t.TempDir()

	// Daemon A: accept the job, let it run past a snapshot, then die with an
	// exhausted drain budget — exactly what a SIGKILL-adjacent shutdown does.
	mgrA, err := service.OpenManager(service.Config{
		Workers: 1, QueueDepth: 4, DataDir: dataDir, CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(service.NewHandler(mgrA))
	a := postJob(t, srvA.URL, durableJob)
	pollUntil(t, "job to pass iteration 20", func() bool {
		v := getJob(t, srvA.URL, a.ID)
		if v.State != "running" && v.State != "queued" {
			t.Fatalf("job finished before the kill: state=%s", v.State)
		}
		return v.Progress != nil && v.Progress.Iteration >= 20
	})
	srvA.Close()
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	mgrA.Shutdown(expired) //nolint:errcheck // deadline exceeded by design

	// Daemon B: same data dir, fresh manager and server. The job comes back
	// on its own and runs to completion.
	mgrB, err := service.OpenManager(service.Config{
		Workers: 1, QueueDepth: 4, DataDir: dataDir, CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(service.NewHandler(mgrB))
	defer srvB.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mgrB.Shutdown(ctx) //nolint:errcheck // test teardown
	}()

	pollUntil(t, "recovered job to finish", func() bool {
		return getJob(t, srvB.URL, a.ID).State == "done"
	})
	v := getJob(t, srvB.URL, a.ID)
	if v.Resumes != 1 {
		t.Errorf("recovered job resumes = %d, want 1", v.Resumes)
	}
	if v.Result == nil || v.Result.DPWL <= 0 {
		t.Errorf("recovered job finished without a usable result: %+v", v.Result)
	}
	m := scrapeMetrics(t, srvB.URL)
	if m["placerd_jobs_recovered_total"] != 1 {
		t.Errorf("placerd_jobs_recovered_total = %v, want 1", m["placerd_jobs_recovered_total"])
	}
	if m[`placerd_jobs_finished_total{state="done"}`] != 1 {
		t.Errorf("finished{done} = %v, want 1", m[`placerd_jobs_finished_total{state="done"}`])
	}
}

// TestDebugMuxServesPprof pins the explicit pprof wiring: the index and the
// common profiles answer on the debug mux, which is separate from the API
// handler (the API mux must NOT expose /debug/pprof/).
func TestDebugMuxServesPprof(t *testing.T) {
	dbg := httptest.NewServer(newDebugMux())
	defer dbg.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/heap",
		"/debug/pprof/goroutine",
		"/debug/pprof/cmdline",
	} {
		resp, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	mgr := service.NewManager(service.Config{Workers: 1, QueueDepth: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		mgr.Shutdown(ctx) //nolint:errcheck // test teardown
	}()
	api := httptest.NewServer(service.NewHandler(mgr))
	defer api.Close()
	resp, err := http.Get(api.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("API handler exposes /debug/pprof/ — profiles must stay on -debug-addr")
	}
}

func deleteJob(t *testing.T, base, id string) jobView {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /jobs/%s status = %d, want 200", id, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status = %d, want 200", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

var metricLine = regexp.MustCompile(`(?m)^([a-z_]+(?:\{[^}]*\})?) ([0-9.eE+-]+)$`)

// scrapeMetrics fetches /metrics and returns metric name (with labels) -> value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, m := range metricLine.FindAllStringSubmatch(string(body), -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = v
	}
	if len(out) == 0 {
		t.Fatalf("no metrics parsed from scrape:\n%s", body)
	}
	return out
}

// TestServeMuxReadiness pins the daemon-level probes: /healthz (liveness,
// from the service handler) always answers 200 while the process is up,
// and /readyz follows the fleet-registration signal — 503 until the
// coordinator acks a heartbeat, 200 after, and the rest of the API keeps
// working either way.
func TestServeMuxReadiness(t *testing.T) {
	mgr := service.NewManager(service.Config{Workers: 1, QueueDepth: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		mgr.Shutdown(ctx) //nolint:errcheck // test teardown
	}()
	var ready atomic.Bool
	api := httptest.NewServer(newServeMux(mgr, ready.Load))
	defer api.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(api.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz before registration = %d, want 503", got)
	}
	if got := status("/jobs"); got != http.StatusOK {
		t.Errorf("/jobs while unready = %d, want 200 (readiness must not block the API)", got)
	}
	ready.Store(true)
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz after registration = %d, want 200", got)
	}
}
