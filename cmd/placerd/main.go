// Command placerd serves placement as a service: a JSON HTTP API over the
// internal/service job manager, running ePlace-style global placement (with
// any wirelength model, including the paper's Moreau-envelope model) on a
// bounded worker pool with cancellation, live progress, and Prometheus
// metrics.
//
// Usage:
//
//	placerd [-addr :8080] [-workers 2] [-queue 16] [-retention 64]
//	        [-timeout 0] [-aux-root dir]
//
// Endpoints: POST /jobs, GET /jobs, GET /jobs/{id},
// GET /jobs/{id}/trajectory, DELETE /jobs/{id}, GET /metrics, GET /healthz.
// SIGINT/SIGTERM drains gracefully: running jobs finish (up to -drain), then
// remaining jobs are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 2, "concurrent placement workers")
		queue     = flag.Int("queue", 16, "max queued jobs (submits beyond this get 429)")
		retention = flag.Int("retention", 64, "finished jobs kept for inspection")
		timeout   = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
		auxRoot   = flag.String("aux-root", "", "directory Bookshelf aux jobs may read from (empty disables them)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown budget before cancelling jobs")
	)
	flag.Parse()

	mgr := service.NewManager(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Retention:      *retention,
		DefaultTimeout: *timeout,
		AuxRoot:        *auxRoot,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("placerd listening on %s (workers=%d queue=%d)", *addr, *workers, *queue)

	select {
	case err := <-errc:
		log.Fatalf("placerd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("placerd: draining (budget %s)...", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("placerd: http shutdown: %v", err)
	}
	if err := mgr.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("placerd: manager shutdown: %v", err)
	}
	fmt.Println("placerd: bye")
}
