// Command placerd serves placement as a service: a JSON HTTP API over the
// internal/service job manager, running ePlace-style global placement (with
// any wirelength model, including the paper's Moreau-envelope model) on a
// bounded worker pool with cancellation, live progress, and Prometheus
// metrics.
//
// Usage:
//
//	placerd [-addr :8080] [-workers 2] [-queue 16] [-retention 64]
//	        [-timeout 0] [-aux-root dir] [-data-dir dir] [-checkpoint-every 25]
//	        [-cache-entries 256] [-cache-bytes 268435456]
//	        [-log-format text|json] [-log-level info] [-trace dir]
//	        [-debug-addr :6060]
//	        [-coordinator url] [-node-id id] [-advertise url]
//	        [-heartbeat 1s] [-resume-root dir]
//
// Endpoints: POST /jobs, GET /jobs, GET /jobs/{id},
// GET /jobs/{id}/trajectory, GET /v1/jobs/{id}/trajectory (NDJSON stream),
// DELETE /jobs/{id} (?if=queued for steal-safe cancels), GET /stats,
// GET /metrics, GET /healthz, GET /readyz.
// SIGINT/SIGTERM drains gracefully: the listener stops accepting, running
// jobs finish (up to -drain), remaining jobs are checkpointed and cancelled,
// and a fleet member deregisters from its coordinator so queued work
// re-routes immediately instead of waiting out the heartbeat TTL.
//
// With -coordinator the daemon joins a fleet: it heartbeats its identity
// (-node-id), advertised URL (-advertise), capacity report, and -data-dir to
// the coordinator, which then routes fleet jobs to it. -resume-root names the
// shared-filesystem root under which job specs may point their resume
// directories (cross-node checkpoint handoff); when empty, resume.dir jobs
// are rejected. /readyz reports 503 until the coordinator acknowledges a
// heartbeat (standalone daemons are always ready).
//
// With -data-dir the daemon is durable: specs, statuses, and placement
// snapshots are persisted under the directory, jobs cancelled by the drain
// are recorded as interrupted, and the next boot with the same -data-dir
// re-enqueues them as warm-start resumes from their latest snapshot. A
// durable daemon also keeps a placement-result cache under
// <data-dir>/ecocache (bounded by -cache-entries and -cache-bytes): an
// identical resubmission is served bit-identically without running the GP
// loop, and a job whose spec carries "parent" warm-starts from the parent's
// cached placement with only the design delta's blast region re-placed.
//
// With -trace each job writes a Chrome trace_event JSON file
// (<dir>/<job-id>.trace.json) with one span per engine phase per iteration;
// load it in chrome://tracing or https://ui.perfetto.dev. With -debug-addr
// a second listener serves net/http/pprof profiles (heap, CPU, goroutines)
// away from the public API.
package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flag"

	"repro/internal/checkpoint"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "placerd: %v\n", err)
		os.Exit(1)
	}
}

// run holds the daemon's whole lifecycle so deferred cleanup (manager
// shutdown, listener close) actually executes on every exit path — a bare
// log.Fatalf would skip it and leak running jobs without a drain.
func run(argv []string) error {
	fs := flag.NewFlagSet("placerd", flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		workers   = fs.Int("workers", 2, "concurrent placement workers")
		queue     = fs.Int("queue", 16, "max queued jobs (submits beyond this get 429)")
		retention = fs.Int("retention", 64, "finished jobs kept for inspection")
		timeout   = fs.Duration("timeout", 0, "default per-job deadline (0 = none)")
		auxRoot   = fs.String("aux-root", "", "directory Bookshelf aux jobs may read from (empty disables them)")
		drain     = fs.Duration("drain", 30*time.Second, "graceful shutdown budget before cancelling jobs")
		dataDir   = fs.String("data-dir", "", "durable job store directory (empty = in-memory only)")
		ckptEvery = fs.Int("checkpoint-every", 25, "snapshot cadence in GP iterations for durable jobs")
		cacheEnts = fs.Int("cache-entries", 0, "max placement-result cache entries (0 = default 256; needs -data-dir)")
		cacheByte = fs.Int64("cache-bytes", 0, "max placement-result cache bytes (0 = default 256 MiB; needs -data-dir)")
		logFormat = fs.String("log-format", "text", "log encoding: text or json")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn, error")
		traceDir  = fs.String("trace", "", "write per-job Chrome trace files into this directory")
		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")

		coordinator = fs.String("coordinator", "", "fleet coordinator base URL (empty = standalone)")
		nodeID      = fs.String("node-id", "", "stable fleet identity (default: hostname)")
		advertise   = fs.String("advertise", "", "base URL other nodes reach this daemon at (default http://<hostname><addr>)")
		heartbeat   = fs.Duration("heartbeat", time.Second, "fleet heartbeat interval")
		resumeRoot  = fs.String("resume-root", "", "shared-filesystem root resume.dir job specs may point into (empty rejects them)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.New(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}

	// Count and log transient snapshot-write retries across all jobs.
	// Installed before OpenManager so recovery-time writes are covered too.
	tel := telemetry.NewCollector(obs.EnginePhases()...)
	checkpoint.OnWriteRetry = func(path string, attempt int, err error) {
		tel.CheckpointRetries.Inc()
		logger.Warn("checkpoint write retried", "path", path, "attempt", attempt, "err", err)
	}

	mgr, err := service.OpenManager(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		Retention:       *retention,
		DefaultTimeout:  *timeout,
		AuxRoot:         *auxRoot,
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
		CacheEntries:    *cacheEnts,
		CacheBytes:      *cacheByte,
		ResumeRoot:      *resumeRoot,
		Telemetry:       tel,
		Log:             logger,
		TraceDir:        *traceDir,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		if n := mgr.Telemetry().JobsRecovered.Value(); n > 0 {
			logger.Info("recovered unfinished jobs", "count", n, "data_dir", *dataDir)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Fleet membership: heartbeat the coordinator; ready only once it acks.
	// Standalone daemons (no -coordinator) are ready as soon as they listen.
	ready := func() bool { return true }
	var agent *fleet.Agent
	if *coordinator != "" {
		id := *nodeID
		host, _ := os.Hostname()
		if id == "" {
			id = host
		}
		adv := *advertise
		if adv == "" {
			adv = "http://" + host + *addr
		}
		agent = &fleet.Agent{
			Coordinator: *coordinator,
			ID:          id,
			URL:         adv,
			DataDir:     *dataDir,
			Stats:       mgr.Stats,
			Interval:    *heartbeat,
			Log:         logger.With("component", "fleet-agent"),
		}
		go agent.Run(ctx)
		ready = agent.Registered
		logger.Info("joining fleet", "coordinator", *coordinator, "node_id", id, "advertise", adv)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServeMux(mgr, ready),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           newDebugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *debugAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	// Logged after recovery so the recovered-jobs line (if any) precedes the
	// ready line operators grep for.
	logger.Info("placerd listening", "addr", *addr, "workers", *workers, "queue", *queue)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("draining", "budget", drain.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutCtx); err != nil {
			logger.Warn("debug shutdown", "err", err)
		}
	}
	if err := mgr.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("manager shutdown", "err", err)
	}
	// Deregister after the manager drain so every interrupted job has its
	// checkpoint on disk before the coordinator starts re-routing; a fresh
	// short context keeps a dead coordinator from stalling the exit.
	if agent != nil {
		byeCtx, byeCancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := agent.Deregister(byeCtx); err != nil {
			logger.Warn("fleet deregister", "err", err)
		}
		byeCancel()
	}
	logger.Info("bye")
	return nil
}

// newServeMux wraps the service API with the daemon-level /readyz probe:
// liveness (/healthz, inside the service handler) says the process is up,
// readiness says it can usefully take traffic — which for a fleet member
// means the coordinator has acknowledged a heartbeat. Standalone daemons
// pass ready = always-true.
func newServeMux(mgr *service.Manager, ready func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"not registered with coordinator"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.Handle("/", service.NewHandler(mgr))
	return mux
}

// newDebugMux builds the pprof handler set explicitly instead of relying on
// the net/http/pprof side-effect registration on http.DefaultServeMux, so
// profiles are only reachable via -debug-addr and never leak onto the
// public API listener.
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
