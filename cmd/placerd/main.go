// Command placerd serves placement as a service: a JSON HTTP API over the
// internal/service job manager, running ePlace-style global placement (with
// any wirelength model, including the paper's Moreau-envelope model) on a
// bounded worker pool with cancellation, live progress, and Prometheus
// metrics.
//
// Usage:
//
//	placerd [-addr :8080] [-workers 2] [-queue 16] [-retention 64]
//	        [-timeout 0] [-aux-root dir] [-data-dir dir] [-checkpoint-every 25]
//
// Endpoints: POST /jobs, GET /jobs, GET /jobs/{id},
// GET /jobs/{id}/trajectory, DELETE /jobs/{id}, GET /metrics, GET /healthz.
// SIGINT/SIGTERM drains gracefully: running jobs finish (up to -drain), then
// remaining jobs are cancelled.
//
// With -data-dir the daemon is durable: specs, statuses, and placement
// snapshots are persisted under the directory, jobs cancelled by the drain
// are recorded as interrupted, and the next boot with the same -data-dir
// re-enqueues them as warm-start resumes from their latest snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 2, "concurrent placement workers")
		queue     = flag.Int("queue", 16, "max queued jobs (submits beyond this get 429)")
		retention = flag.Int("retention", 64, "finished jobs kept for inspection")
		timeout   = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
		auxRoot   = flag.String("aux-root", "", "directory Bookshelf aux jobs may read from (empty disables them)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown budget before cancelling jobs")
		dataDir   = flag.String("data-dir", "", "durable job store directory (empty = in-memory only)")
		ckptEvery = flag.Int("checkpoint-every", 25, "snapshot cadence in GP iterations for durable jobs")
	)
	flag.Parse()

	mgr, err := service.OpenManager(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		Retention:       *retention,
		DefaultTimeout:  *timeout,
		AuxRoot:         *auxRoot,
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		log.Fatalf("placerd: %v", err)
	}
	if *dataDir != "" {
		if n := mgr.Telemetry().JobsRecovered.Value(); n > 0 {
			log.Printf("placerd: recovered %d unfinished job(s) from %s", n, *dataDir)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("placerd listening on %s (workers=%d queue=%d)", *addr, *workers, *queue)

	select {
	case err := <-errc:
		log.Fatalf("placerd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("placerd: draining (budget %s)...", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("placerd: http shutdown: %v", err)
	}
	if err := mgr.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("placerd: manager shutdown: %v", err)
	}
	fmt.Println("placerd: bye")
}
