// Command placer runs the full placement flow (global placement with a
// chosen wirelength model, Abacus legalization, detailed placement) on a
// Bookshelf design or a generated synthetic benchmark.
//
// Usage:
//
//	placer -aux design.aux -model ME [-iters 800] [-out outdir]
//	placer -suite ispd2006 -design newblue1 -scale 0.01 -model ME
//	placer -cells 2000 -model WA
//
// The flow prints GPWL/LGWL/DPWL and per-stage runtimes; -out writes the
// placed design back as a Bookshelf file set.
//
// With -checkpoint the run snapshots its full placement state into the
// directory (every -checkpoint-every iterations, and once more on Ctrl-C),
// and -resume restarts an interrupted run from its latest snapshot — with
// the same design, model, and worker count it finishes bit-identically to a
// never-interrupted run.
//
// With -guard the loop watches its own numerical health every iteration
// (finite positions, bounded HPWL growth, overflow progress) and rolls back
// to a recent in-memory snapshot on a violation, retrying with a shrunken
// step; a run that cannot recover exits 3 with a divergence report instead
// of emitting NaN positions.
//
// With -trace the run records one span per engine phase per iteration and
// writes them on exit: a path ending in .jsonl gets line-delimited JSON,
// anything else gets Chrome trace_event JSON for chrome://tracing or
// https://ui.perfetto.dev. -log-level debug streams per-iteration progress
// through the structured logger (-log-format text|json) on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"repro/internal/bookshelf"
	"repro/internal/checkpoint"
	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/placer"
	"repro/internal/plot"
	"repro/internal/synth"
)

func main() {
	var (
		aux     = flag.String("aux", "", "Bookshelf .aux file to place")
		suite   = flag.String("suite", "", "synthetic suite: ispd2006 or ispd2019")
		design  = flag.String("design", "", "design name within -suite (e.g. newblue1)")
		scale   = flag.Float64("scale", 0.01, "suite scale factor")
		cells   = flag.Int("cells", 0, "generate an ad-hoc synthetic design with this many cells")
		model   = flag.String("model", "ME", "wirelength model: LSE, WA, BiG_CHKS, ME, HPWL")
		iters   = flag.Int("iters", 800, "max global placement iterations")
		workers = flag.Int("workers", 0, "placement worker pool size (wirelength + density; 0 = serial)")
		overfl  = flag.Float64("overflow", 0.07, "global placement stop overflow")
		seed    = flag.Int64("seed", 1, "random seed")
		tetris  = flag.Bool("tetris", false, "use the greedy Tetris legalizer instead of Abacus")
		skipDP  = flag.Bool("skip-dp", false, "stop after legalization")
		outDir  = flag.String("out", "", "write the placed design as Bookshelf files to this directory")
		verbose = flag.Bool("v", false, "print the GP trajectory")
		useISM  = flag.Bool("ism", false, "enable independent-set matching in detailed placement")
		congest = flag.Bool("congestion", false, "report RUDY congestion statistics of the final placement")
		plotDir = flag.String("plot", "", "write placement.svg and congestion.svg into this directory")
		routab  = flag.Int("routability", 0, "congestion-driven inflation rounds (0 = off)")
		ckptDir = flag.String("checkpoint", "", "write placement snapshots into this directory")
		ckptEv  = flag.Int("checkpoint-every", 50, "snapshot cadence in GP iterations (with -checkpoint)")
		resume  = flag.Bool("resume", false, "warm-start from the latest snapshot in -checkpoint")
		guardOn = flag.Bool("guard", false, "enable the numerical-health guard (divergence detection + rollback)")
		guardRt = flag.Int("guard-retries", 0, "guard rollback budget per divergence episode (0 = default)")
		traceTo = flag.String("trace", "", "write a span trace to this file (.jsonl = JSONL, else Chrome trace JSON)")
		logFmt  = flag.String("log-format", "text", "log encoding: text or json")
		logLvl  = flag.String("log-level", "warn", "log level: debug, info, warn, error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLvl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placer: %v\n", err)
		os.Exit(2)
	}
	logger, err := obs.New(os.Stderr, *logFmt, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placer: %v\n", err)
		os.Exit(2)
	}

	d, err := loadDesign(*aux, *suite, *design, *scale, *cells, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placer: %v\n", err)
		os.Exit(1)
	}
	stats := d.ComputeStats()
	fmt.Printf("design %s: %d movable (%d macros), %d fixed, %d nets, %d pins, util %.2f\n",
		stats.Name, stats.NumMovable, stats.NumMacros, stats.NumFixed,
		stats.NumNets, stats.NumPins, stats.Utilization)

	cfg := core.DefaultFlowConfig(*model)
	cfg.GP = placer.Config{MaxIters: *iters, StopOverflow: *overfl, Seed: *seed, Workers: *workers}
	if *verbose {
		cfg.GP.RecordEvery = 25
	}
	observer := &obs.Observer{Log: logger, Metrics: obs.NewMetrics()}
	if *traceTo != "" {
		observer.Trace = obs.NewTracer()
	}
	cfg.GP.Obs = observer
	cfg.UseTetris = *tetris
	cfg.SkipDetailed = *skipDP
	cfg.DP.UseISM = *useISM
	cfg.RoutabilityRounds = *routab
	if *ckptDir != "" {
		cfg.GP.Checkpoint = placer.CheckpointConfig{Every: *ckptEv, Dir: *ckptDir}
	}
	if *resume {
		if *ckptDir == "" {
			fmt.Fprintln(os.Stderr, "placer: -resume needs -checkpoint to know where the snapshots are")
			os.Exit(1)
		}
		// ResumeDir skips corrupt and fingerprint-mismatched snapshots and
		// degrades to a cold start when nothing usable is left.
		cfg.GP.ResumeDir = *ckptDir
	}
	if *guardOn {
		cfg.GP.Guard = &guard.Config{MaxRetries: *guardRt}
	}
	// Transient snapshot-write failures are retried with backoff; surface
	// each retry as a warning so flaky storage is visible.
	checkpoint.OnWriteRetry = func(path string, attempt int, err error) {
		logger.Warn("checkpoint write retried", "path", path, "attempt", attempt, "err", err)
	}

	// Ctrl-C / SIGTERM cancels the flow at the next placement iteration;
	// with -checkpoint the engine snapshots its state on the way out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := core.RunFlowContext(ctx, d, cfg)
	if *traceTo != "" {
		// Flush whatever spans were recorded even on an interrupted run: a
		// partial trace of a slow design is exactly what you want to inspect.
		if werr := writeTrace(observer.Trace, *traceTo); werr != nil {
			fmt.Fprintf(os.Stderr, "placer: trace: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "wrote trace %s (%d spans)\n", *traceTo, len(observer.Trace.Events()))
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "placer: interrupted, placement abandoned")
			if *ckptDir != "" {
				fmt.Fprintf(os.Stderr, "placer: rerun with -checkpoint %s -resume to continue\n", *ckptDir)
			}
			os.Exit(130)
		}
		var de *guard.DivergenceError
		if errors.As(err, &de) {
			fmt.Fprintf(os.Stderr, "placer: %v\n", err)
			fmt.Fprintf(os.Stderr, "placer: the design was left at the last good iteration (%d); rerun with -log-level debug for the violation history\n", de.LastGood)
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "placer: %v\n", err)
		os.Exit(1)
	}
	if res.ResumedFrom > 0 {
		fmt.Printf("resumed from snapshot at iteration %d\n", res.ResumedFrom)
	}
	if res.GuardTrips > 0 {
		fmt.Printf("guard: %d trips, %d rollbacks, %d recoveries\n",
			res.GuardTrips, res.GuardRollbacks, res.GuardRecoveries)
	}
	if *verbose {
		fmt.Println("iter  overflow  hpwl        param      lambda")
		for _, p := range res.Trajectory {
			fmt.Printf("%-5d %-9.3f %-11.4g %-10.4g %-10.4g\n", p.Iter, p.Overflow, p.HPWL, p.Param, p.Lambda)
		}
	}
	fmt.Printf("model=%s GPWL=%.6g LGWL=%.6g DPWL=%.6g overflow=%.3f iters=%d\n",
		res.Model, res.GPWL, res.LGWL, res.DPWL, res.Overflow, res.GPIters)
	fmt.Printf("runtime: GP=%.2fs LG=%.2fs DP=%.2fs total=%.2fs legal=%v\n",
		res.GPSeconds, res.LGSeconds, res.DPSeconds, res.TotalSeconds, res.LegalizationOK)
	printPhaseSummary(observer.Metrics)

	if *congest {
		cmap, err := congestion.RUDY(d, 64, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "placer: congestion: %v\n", err)
			os.Exit(1)
		}
		cs := cmap.ComputeStats()
		fmt.Printf("congestion (RUDY 64x64): peak=%.4f p99=%.4f p95=%.4f avg=%.4f hotspots=%.1f%%\n",
			cs.Peak, cs.P99, cs.P95, cs.Avg, 100*cs.HotspotFrac)
	}

	if *plotDir != "" {
		if err := writePlots(d, *plotDir); err != nil {
			fmt.Fprintf(os.Stderr, "placer: plots: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s/placement.svg and congestion.svg\n", *plotDir)
	}

	if *outDir != "" {
		auxOut, err := bookshelf.WriteDesign(d, *outDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "placer: writing output: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", auxOut)
	}
}

// writeTrace exports the recorded spans: Chrome trace_event JSON by default,
// JSONL when the path ends in .jsonl.
func writeTrace(t *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = t.WriteJSONL(f)
	} else {
		err = t.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// printPhaseSummary breaks the GP runtime down by engine phase, sorted by
// total time spent.
func printPhaseSummary(m *obs.Metrics) {
	snap := m.Snapshot()
	if len(snap.PhaseSeconds) == 0 {
		return
	}
	phases := make([]string, 0, len(snap.PhaseSeconds))
	for p := range snap.PhaseSeconds {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool {
		return snap.PhaseSeconds[phases[i]] > snap.PhaseSeconds[phases[j]]
	})
	fmt.Println("phase            seconds   calls")
	for _, p := range phases {
		fmt.Printf("%-16s %-9.3f %d\n", p, snap.PhaseSeconds[p], snap.PhaseCalls[p])
	}
}

// writePlots renders the placement and its RUDY congestion heatmap as SVGs.
func writePlots(d *netlist.Design, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	pf, err := os.Create(filepath.Join(dir, "placement.svg"))
	if err != nil {
		return err
	}
	if err := plot.PlacementSVG(pf, d, 900); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	cmap, err := congestion.RUDY(d, 64, 64)
	if err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, "congestion.svg"))
	if err != nil {
		return err
	}
	if err := plot.HeatmapSVG(cf, cmap.Demand, cmap.Nx, cmap.Ny, "RUDY congestion "+d.Name); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

func loadDesign(aux, suiteName, designName string, scale float64, cells int, seed int64) (*netlist.Design, error) {
	switch {
	case aux != "":
		return bookshelf.ReadDesign(aux)
	case suiteName != "":
		specs, err := synth.SuiteScaled(suiteName, scale)
		if err != nil {
			return nil, err
		}
		for _, s := range specs {
			if s.Name == designName {
				return synth.Generate(s)
			}
		}
		return nil, fmt.Errorf("design %q not in suite %s", designName, suiteName)
	case cells > 0:
		return synth.Generate(synth.Spec{
			Name:          fmt.Sprintf("adhoc%d", cells),
			NumMovable:    cells,
			NumPads:       8,
			NumNets:       cells + cells/10,
			AvgDegree:     3.9,
			Utilization:   0.7,
			TargetDensity: 1.0,
			Seed:          seed,
		})
	}
	return nil, fmt.Errorf("give one of -aux, -suite/-design, or -cells (see -h)")
}
