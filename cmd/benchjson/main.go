// Command benchjson converts `go test -bench` text output (read from stdin)
// into the machine-readable JSON perf trajectory the Makefile's bench target
// writes to BENCH_PR2.json. For every benchmark family that ran with
// /workers=1 and /workers=N sub-benchmarks it also reports the parallel
// speedup (ns/op ratio), which is the number later PRs compare against.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson > BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. BytesPerOp/AllocsPerOp are pointers
// so that a measured zero (the contract the hot paths are tested against)
// serializes as an explicit 0 rather than being omitted — absent means the
// benchmark did not report allocations at all.
type Benchmark struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

// Report is the BENCH_PR2.json document.
type Report struct {
	// CPUs records the machine's core count; parallel speedups are only
	// meaningful when it is at least the benchmarked worker count.
	CPUs       int                           `json:"cpus"`
	GoOS       string                        `json:"goos"`
	GoArch     string                        `json:"goarch"`
	Benchmarks []Benchmark                   `json:"benchmarks"`
	Speedups   map[string]map[string]float64 `json:"speedups,omitempty"`
}

// benchLine matches "BenchmarkFoo/workers=2-8  3  123456 ns/op  78 B/op  9 allocs/op"
// (the -P GOMAXPROCS suffix and the B/op / allocs/op columns are optional).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// workersSuffix splits "Family/workers=N" benchmark names.
var workersSuffix = regexp.MustCompile(`^(.+)/workers=(\d+)$`)

func main() {
	report := Report{CPUs: runtime.NumCPU(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			b.BytesPerOp = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			b.AllocsPerOp = &v
		}
		report.Benchmarks = append(report.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	report.Speedups = speedups(report.Benchmarks)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// speedups computes, for every family with a workers=1 baseline, the ns/op
// ratio of the baseline to each other worker count ("workers=4" -> 2.1
// means the 4-worker variant ran 2.1x faster than serial).
func speedups(benches []Benchmark) map[string]map[string]float64 {
	baselines := map[string]float64{}
	variants := map[string]map[string]float64{}
	for _, b := range benches {
		m := workersSuffix.FindStringSubmatch(b.Name)
		if m == nil {
			continue
		}
		family, count := m[1], m[2]
		if count == "1" {
			baselines[family] = b.NsPerOp
			continue
		}
		if variants[family] == nil {
			variants[family] = map[string]float64{}
		}
		variants[family]["workers="+count] = b.NsPerOp
	}
	out := map[string]map[string]float64{}
	families := make([]string, 0, len(variants))
	for f := range variants {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		base, ok := baselines[f]
		if !ok || base <= 0 {
			continue
		}
		out[f] = map[string]float64{}
		for k, ns := range variants[f] {
			if ns > 0 {
				// Two decimal places keep the JSON diff-friendly.
				out[f][k] = roundTo(base/ns, 2)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func roundTo(v float64, places int) float64 {
	s := strconv.FormatFloat(v, 'f', places, 64)
	r, _ := strconv.ParseFloat(strings.TrimRight(s, "0"), 64)
	return r
}
