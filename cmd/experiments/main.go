// Command experiments regenerates the paper's tables and figures on the
// synthetic contest suites.
//
// Usage:
//
//	experiments -exp table1|table2|table3|fig1a|fig1b|fig3|stability|all \
//	            [-scale2006 f] [-scale2019 f] [-iters n] [-overflow f] \
//	            [-workers n] [-place-workers n] [-samples n] [-quiet]
//
// Full-scale regeneration (the defaults) takes CPU-minutes for table2/table3;
// pass smaller scales for a quick look, e.g. -scale2006 0.002 -scale2019 0.005.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/plot"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1, table2, table3, fig1a, fig1b, fig3, stability, ablation, seeds, all")
		scale2006 = flag.Float64("scale2006", 0, "ISPD2006 scale factor (default 1/100)")
		scale2019 = flag.Float64("scale2019", 0, "ISPD2019 scale factor (default 1/20)")
		iters     = flag.Int("iters", 0, "max global placement iterations (default 2500)")
		overflow  = flag.Float64("overflow", 0, "stop overflow (default 0.07)")
		workers   = flag.Int("workers", 0, "concurrent designs (default NumCPU/2)")
		placeWork = flag.Int("place-workers", 0, "per-placement worker pool (wirelength + density; 0 = serial)")
		samples   = flag.Int("samples", 3000, "random nets per point for fig1b")
		quiet     = flag.Bool("quiet", false, "suppress per-flow progress lines")
		svgDir    = flag.String("svg", "", "also write figures as SVG files into this directory")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancels in-flight flows at the next GP iteration.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := experiments.Options{
		Scale2006:    *scale2006,
		Scale2019:    *scale2019,
		MaxIters:     *iters,
		StopOverflow: *overflow,
		Workers:      *workers,
		PlaceWorkers: *placeWork,
		Ctx:          ctx,
	}
	if !*quiet {
		o.Progress = os.Stderr
	}
	out := io.Writer(os.Stdout)

	run := func(name string) error {
		switch name {
		case "table1":
			return experiments.Table1(out, o)
		case "table2":
			_, err := experiments.Table2(out, o)
			return err
		case "table3":
			_, err := experiments.Table3(out, o)
			return err
		case "fig1a":
			series, _ := experiments.Fig1a(out)
			return writeSVG(*svgDir, "fig1a.svg", &plot.Chart{
				Title: "Fig. 1(a) WA non-convexity on a 3-pin net", XLabel: "x", YLabel: "approx dx",
				Series: series,
			})
		case "fig1b":
			pts := experiments.Fig1b(out, *samples, 42)
			return writeSVG(*svgDir, "fig1b.svg", &plot.Chart{
				Title:  "Fig. 1(b) mean approximation error vs smoothing parameter",
				XLabel: "smoothing parameter", YLabel: "mean abs error",
				LogX: true, Series: experiments.Fig1bSeries(pts),
			})
		case "fig3":
			blocks, err := experiments.Fig3(out, o)
			if err != nil {
				return err
			}
			for _, b := range blocks {
				if err := writeSVG(*svgDir, b.Label+".svg", &plot.Chart{
					Title: b.Label + " HPWL vs overflow", XLabel: "density overflow",
					YLabel: "HPWL", Series: b.Series,
				}); err != nil {
					return err
				}
			}
			return nil
		case "stability":
			experiments.StabilityStudy(out)
			return nil
		case "ablation":
			_, err := experiments.Ablation(out, o)
			return err
		case "seeds":
			_, err := experiments.SeedStudy(out, o, nil)
			return err
		}
		return fmt.Errorf("unknown experiment %q", name)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig1a", "fig1b", "stability", "ablation", "fig3", "table2", "table3"}
	}
	for _, name := range names {
		fmt.Fprintf(out, "\n==== %s ====\n", name)
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

// writeSVG renders a chart into dir/name; a blank dir disables SVG output.
func writeSVG(dir, name string, c *plot.Chart) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := c.Render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
